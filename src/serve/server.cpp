#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <thread>

#include "core/lint/lint.hpp"
#include "eval/bytecode.hpp"

namespace ph::serve {

namespace {

/// Idle-loop nap: the ceiling this adds to request latency when nothing
/// is happening is well under the scheduling noise of a fork'd fleet.
constexpr std::uint64_t kIdleNapUs = 100;
/// A running request this far past its deadline gets its Cancel re-sent
/// (backstop — the worker's own deadline poll should have fired long
/// before; heartbeat silence handles a truly wedged worker).
constexpr std::uint64_t kCancelNudgeUs = 100'000;

void set_nonblock(int fd) {
  const int fl = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, fl | O_NONBLOCK);
}

}  // namespace

ServeDaemon::ServeDaemon(const Program& prog, ServeConfig cfg)
    : prog_(prog),
      cfg_(std::move(cfg)),
      admission_(cfg_.queue_capacity),
      dedup_(cfg_.dedup_capacity, cfg_.dedup_age_us) {}

ServeDaemon::~ServeDaemon() {
  for (Conn& c : conns_)
    if (c.fd >= 0) ::close(c.fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void ServeDaemon::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("phserved: socket() failed");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // localhost only
  addr.sin_port = htons(cfg_.port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throw std::runtime_error(std::string("phserved: bind failed: ") +
                             std::strerror(errno));
  if (listen(listen_fd_, 64) != 0)
    throw std::runtime_error("phserved: listen failed");
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  set_nonblock(listen_fd_);

  // Workers must not inherit live client connections: a forked worker
  // holding a conn fd would keep it open past the daemon's close().
  FleetConfig fc = cfg_.fleet;
  const auto user_hook = fc.post_fork_child;
  fc.post_fork_child = [this, user_hook] {
    ::close(listen_fd_);
    for (Conn& c : conns_)
      if (c.fd >= 0) ::close(c.fd);
    if (user_hook) user_hook();
  };
  // Precompile the catalog program before the fleet forks: the workers
  // inherit the registry entry, so per-request Machines share one blob
  // instead of each recompiling, and a --code-cache file is read (or
  // written) exactly once, by the daemon. A defective cache file is
  // rejected and recompiled here; an unwritable path fails start-up
  // loudly instead of failing every request.
  if (fc.worker_rts.bytecode) {
    lint_or_throw(prog_, {}, "bytecode");
    bc::shared_cache().get_or_compile(prog_, fc.worker_rts.code_cache);
  }
  fleet_ = std::make_unique<ServeFleet>(prog_, fc);
  fleet_->start();
}

ServeReply ServeDaemon::make_error(std::uint64_t id, ServeError e,
                                   const std::string& t) {
  ServeReply r;
  r.op = ServeOp::Error;
  r.id = id;
  r.error = e;
  r.error_text = t;
  return r;
}

void ServeDaemon::accept_new() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    set_nonblock(fd);
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Reuse a dead slot so waiter {conn, gen} pairs stay unambiguous.
    std::size_t ci = conns_.size();
    for (std::size_t i = 0; i < conns_.size(); ++i)
      if (conns_[i].fd < 0) {
        ci = i;
        break;
      }
    if (ci == conns_.size()) conns_.emplace_back();
    Conn& c = conns_[ci];
    c.fd = fd;
    c.gen = next_gen_++;
    c.reader = net::FrameReader{};
    c.out.clear();
    activity_ = true;
  }
}

void ServeDaemon::close_conn(std::size_t ci) {
  Conn& c = conns_[ci];
  if (c.fd >= 0) ::close(c.fd);
  c.fd = -1;
  c.out.clear();
  // In-flight work owned by this conn keeps running: its reply lands in
  // the dedup cache, where the client's retry (same id, new conn) finds
  // it — that is the idempotency story, not an optimisation.
}

void ServeDaemon::send_to(const Waiter& w, const ServeReply& r) {
  if (w.conn >= conns_.size()) return;
  Conn& c = conns_[w.conn];
  if (c.fd < 0 || c.gen != w.gen) return;  // client went away
  const std::vector<std::uint8_t> frame = net::encode_frame(encode_reply(r));
  c.out.insert(c.out.end(), frame.begin(), frame.end());
  flush_conn(w.conn);
}

void ServeDaemon::send_to_all(const std::vector<Waiter>& ws,
                              const ServeReply& r) {
  for (const Waiter& w : ws) send_to(w, r);
}

void ServeDaemon::flush_conn(std::size_t ci) {
  Conn& c = conns_[ci];
  while (c.fd >= 0 && !c.out.empty()) {
    const ssize_t n = ::write(c.fd, c.out.data(), c.out.size());
    if (n > 0) {
      c.out.erase(c.out.begin(), c.out.begin() + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    close_conn(ci);
    return;
  }
}

void ServeDaemon::handle_submit(std::size_t ci, const net::DataMsg& m) {
  stats_.submits++;
  const Waiter from{ci, conns_[ci].gen};
  std::optional<ServeRequest> req = decode_submit(m);
  if (!req || req->id == 0) {
    stats_.bad_requests++;
    stats_.failed++;
    send_to(from, make_error(m.cseq, ServeError::BadRequest,
                             "malformed submit (ids start at 1)"));
    return;
  }
  const std::uint64_t now = fleet_->now_us();

  // Idempotency first: a retry must never re-execute.
  ServeReply cached;
  switch (dedup_.check(req->id, now, &cached)) {
    case DedupWindow::Verdict::Completed:
      stats_.dedup_hits++;
      send_to(from, cached);
      return;
    case DedupWindow::Verdict::InFlight: {
      // Attach to the running/queued execution; reply fans out to every
      // waiter when it lands.
      stats_.attached_retries++;
      auto it = inflight_.find(req->id);
      if (it != inflight_.end()) {
        it->second.waiters.push_back(from);
        return;
      }
      for (PendingReq& p : queue_)
        if (p.req.id == req->id) {
          p.waiters.push_back(from);
          return;
        }
      // Window says in-flight but neither table has it (completed this
      // very tick): fall through as Fresh would — admission below.
      break;
    }
    case DedupWindow::Verdict::Stale:
      stats_.stale_rejected++;
      stats_.failed++;
      send_to(from, make_error(req->id, ServeError::Stale,
                               "request id below dedup horizon"));
      return;
    case DedupWindow::Verdict::Fresh:
      break;
  }

  if (draining()) {
    stats_.drain_rejects++;
    stats_.failed++;
    send_to(from, make_error(req->id, ServeError::Draining,
                             "daemon is draining"));
    return;
  }

  // Bounded admission: shed with a structured hint instead of queuing
  // unboundedly.
  if (!admission_.admit(queue_.size())) {
    stats_.shed++;
    ServeReply r;
    r.op = ServeOp::Overloaded;
    r.id = req->id;
    r.queue_depth = queue_.size();
    r.retry_after_us =
        admission_.retry_after_us(queue_.size(), fleet_->healthy_workers());
    send_to(from, r);
    return;
  }

  stats_.accepted++;
  dedup_.begin(req->id, now);
  PendingReq p;
  p.abs_deadline_us =
      now + (req->deadline_us != 0 ? req->deadline_us
                                   : cfg_.default_deadline_us);
  p.admitted_us = now;
  p.req = std::move(*req);
  p.waiters.push_back(from);
  queue_.push_back(std::move(p));
}

void ServeDaemon::handle_cancel(std::size_t ci, const net::DataMsg& m) {
  (void)ci;
  const std::uint64_t id = m.cseq;
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->req.id != id) continue;
    const ServeReply r =
        make_error(id, ServeError::Cancelled, "cancelled before dispatch");
    finish(id, r, it->waiters, it->admitted_us);
    stats_.cancelled++;
    queue_.erase(it);
    return;
  }
  auto it = inflight_.find(id);
  if (it != inflight_.end()) fleet_->cancel(it->second.pe, id);
  // Unknown id: already completed (cancel raced the reply) — ignore.
}

void ServeDaemon::finish(std::uint64_t id, const ServeReply& r,
                         const std::vector<Waiter>& waiters,
                         std::uint64_t admitted_us) {
  const std::uint64_t now = fleet_->now_us();
  dedup_.complete(id, r, now);
  send_to_all(waiters, r);
  stats_.latency.record(now >= admitted_us ? now - admitted_us : 0);
  if (r.op == ServeOp::Result)
    stats_.completed++;
  else
    stats_.failed++;
}

void ServeDaemon::dispatch() {
  while (!queue_.empty()) {
    std::optional<std::uint32_t> pe = fleet_->pick_worker();
    if (!pe) return;
    PendingReq p = std::move(queue_.front());
    queue_.pop_front();
    const std::uint64_t now = fleet_->now_us();
    if (now >= p.abs_deadline_us) {
      stats_.deadline_exceeded++;
      finish(p.req.id,
             make_error(p.req.id, ServeError::DeadlineExceeded,
                        "deadline expired in queue"),
             p.waiters, p.admitted_us);
      continue;
    }
    fleet_->submit(*pe, p.req, p.abs_deadline_us);
    InFlight f;
    f.req = std::move(p.req);
    f.pe = *pe;
    f.abs_deadline_us = p.abs_deadline_us;
    f.admitted_us = p.admitted_us;
    f.waiters = std::move(p.waiters);
    inflight_.emplace(f.req.id, std::move(f));
    activity_ = true;
  }
}

void ServeDaemon::sweep_deadlines() {
  const std::uint64_t now = fleet_->now_us();
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (now < it->abs_deadline_us) {
      ++it;
      continue;
    }
    stats_.deadline_exceeded++;
    finish(it->req.id,
           make_error(it->req.id, ServeError::DeadlineExceeded,
                      "deadline expired in queue"),
           it->waiters, it->admitted_us);
    it = queue_.erase(it);
    activity_ = true;
  }
  // Backstop for running requests: the worker's own poll kills at the
  // deadline; if a reply is badly overdue, nudge the cancel again (a
  // worker that lost the first Cancel to a respawn window, say).
  for (auto& [id, f] : inflight_) {
    if (now < f.abs_deadline_us + kCancelNudgeUs) continue;
    if (now - f.last_cancel_nudge_us < kCancelNudgeUs) continue;
    f.last_cancel_nudge_us = now;
    fleet_->cancel(f.pe, id);
  }
}

void ServeDaemon::absorb_fleet_events() {
  FleetEvents ev = fleet_->tick();
  for (const ServeReply& r : ev.replies) {
    auto it = inflight_.find(r.id);
    if (it == inflight_.end()) continue;  // late reply after deadline finish
    if (r.op == ServeOp::Result) admission_.note_service_us(r.exec_us);
    if (r.op == ServeOp::Error && r.error == ServeError::DeadlineExceeded)
      stats_.deadline_exceeded++;
    if (r.op == ServeOp::Error && r.error == ServeError::Cancelled)
      stats_.cancelled++;
    finish(r.id, r, it->second.waiters, it->second.admitted_us);
    inflight_.erase(it);
    activity_ = true;
  }
  const std::uint64_t now = fleet_->now_us();
  for (std::uint64_t id : ev.lost_ids) {
    auto it = inflight_.find(id);
    if (it == inflight_.end()) continue;
    InFlight f = std::move(it->second);
    inflight_.erase(it);
    activity_ = true;
    if (now >= f.abs_deadline_us) {
      stats_.deadline_exceeded++;
      finish(id,
             make_error(id, ServeError::DeadlineExceeded,
                        "PE died and deadline passed"),
             f.waiters, f.admitted_us);
      continue;
    }
    // Transparent retry: the request goes back to the head of the queue
    // with its original deadline — the client just sees a slower reply.
    stats_.requeued_lost++;
    PendingReq p;
    p.req = std::move(f.req);
    p.abs_deadline_us = f.abs_deadline_us;
    p.admitted_us = f.admitted_us;
    p.waiters = std::move(f.waiters);
    queue_.push_front(std::move(p));
  }
}

void ServeDaemon::read_conn(std::size_t ci) {
  Conn& c = conns_[ci];
  std::uint8_t buf[65536];
  for (;;) {
    const ssize_t n = ::read(c.fd, buf, sizeof(buf));
    if (n > 0) {
      c.reader.feed(buf, static_cast<std::size_t>(n));
      activity_ = true;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    close_conn(ci);
    return;
  }
  net::DataMsg m;
  for (;;) {
    try {
      if (!c.reader.next(m)) break;
    } catch (const net::FrameError&) {
      continue;  // reader resyncs past the corrupt region
    }
    if (m.kind != net::MsgKind::Ctrl) continue;
    switch (static_cast<ServeOp>(m.channel)) {
      case ServeOp::Submit:
        handle_submit(ci, m);
        break;
      case ServeOp::Cancel:
        handle_cancel(ci, m);
        break;
      default:
        break;
    }
    if (conns_[ci].fd < 0) return;  // handler closed us
  }
}

void ServeDaemon::run() {
  if (listen_fd_ < 0) start();
  for (;;) {
    activity_ = false;

    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    std::vector<std::size_t> fd_conn;
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      if (conns_[i].fd < 0) continue;
      short ev = POLLIN;
      if (!conns_[i].out.empty()) ev |= POLLOUT;
      fds.push_back({conns_[i].fd, ev, 0});
      fd_conn.push_back(i);
    }
    if (::poll(fds.data(), fds.size(), 0) > 0) {
      if (fds[0].revents & POLLIN) accept_new();
      for (std::size_t k = 1; k < fds.size(); ++k) {
        const std::size_t ci = fd_conn[k - 1];
        if (conns_[ci].fd < 0) continue;
        if (fds[k].revents & (POLLERR | POLLHUP)) {
          close_conn(ci);
          continue;
        }
        if (fds[k].revents & POLLOUT) flush_conn(ci);
        if (conns_[ci].fd >= 0 && (fds[k].revents & POLLIN)) read_conn(ci);
      }
    }

    absorb_fleet_events();
    sweep_deadlines();
    dispatch();

    if (draining() && queue_.empty() && inflight_.empty()) {
      // Stop admitting happened at the flag; everything in flight has
      // finished or deadlined out. Drain the fleet (reaps every worker)
      // and return — phserved exits 0 from here.
      fleet_->drain(cfg_.drain_grace_us);
      for (std::size_t i = 0; i < conns_.size(); ++i)
        if (conns_[i].fd >= 0) {
          flush_conn(i);
          close_conn(i);
        }
      return;
    }
    if (!activity_)
      std::this_thread::sleep_for(std::chrono::microseconds(kIdleNapUs));
  }
}

std::string ServeDaemon::stats_json() const {
  std::ostringstream os;
  os << "{\n"
     << "  \"submits\": " << stats_.submits << ",\n"
     << "  \"accepted\": " << stats_.accepted << ",\n"
     << "  \"completed\": " << stats_.completed << ",\n"
     << "  \"failed\": " << stats_.failed << ",\n"
     << "  \"shed\": " << stats_.shed << ",\n"
     << "  \"deadline_exceeded\": " << stats_.deadline_exceeded << ",\n"
     << "  \"cancelled\": " << stats_.cancelled << ",\n"
     << "  \"dedup_hits\": " << stats_.dedup_hits << ",\n"
     << "  \"attached_retries\": " << stats_.attached_retries << ",\n"
     << "  \"stale_rejected\": " << stats_.stale_rejected << ",\n"
     << "  \"bad_requests\": " << stats_.bad_requests << ",\n"
     << "  \"requeued_lost\": " << stats_.requeued_lost << ",\n"
     << "  \"drain_rejects\": " << stats_.drain_rejects << ",\n"
     << "  \"worker_deaths\": " << (fleet_ ? fleet_->stats().deaths : 0)
     << ",\n"
     << "  \"worker_respawns\": " << (fleet_ ? fleet_->stats().respawns : 0)
     << ",\n"
     << "  \"quarantines\": " << (fleet_ ? fleet_->stats().quarantines : 0)
     << ",\n"
     << "  \"p50_us\": " << stats_.latency.quantile_us(0.50) << ",\n"
     << "  \"p99_us\": " << stats_.latency.quantile_us(0.99) << ",\n"
     << "  \"p999_us\": " << stats_.latency.quantile_us(0.999) << "\n"
     << "}";
  return os.str();
}

}  // namespace ph::serve
