// ServeDaemon — the phserved front-end.
//
// A single-threaded event loop over one nonblocking localhost listening
// socket plus the worker fleet's control plane. Clients speak the CRC-
// framed serve wire (serve/wire.hpp); the daemon owns the robustness
// policies end to end:
//
//   admission    bounded queue; past capacity a submit is answered with
//                Overloaded{queue_depth, retry_after_us} (shed, never
//                queued unboundedly);
//   deadlines    every request gets an absolute deadline at admission
//                (client-supplied or the daemon default); queued requests
//                past deadline are failed without dispatch, running ones
//                are killed inside Machine::step via the cancel hook;
//   idempotency  request ids pass a dedup window — a retry of an
//                in-flight id attaches to the running execution, a retry
//                of a completed id replays the cached reply, an id below
//                the window horizon is rejected Stale (never re-run);
//   chaos        a worker death (kill -9, -Fc, inject_kill) transparently
//                requeues its in-flight request at the head of the queue
//                — the client's reply just arrives late, value unchanged;
//   breaker      restart-budget exhaustion quarantines the PE (fleet
//                breaker) and placement shrinks; the daemon never throws;
//   drain        request_drain() (SIGTERM) stops admission (new submits
//                answered Draining), lets queued + in-flight work finish
//                or deadline out, drains the fleet (no zombies, no shm),
//                flushes stats and returns from run().
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/admission.hpp"
#include "serve/dedup.hpp"
#include "serve/fleet.hpp"
#include "serve/histogram.hpp"

namespace ph::serve {

struct ServeConfig {
  std::uint16_t port = 0;  // 0 = ephemeral (port() reports the choice)
  std::size_t queue_capacity = 64;
  std::size_t dedup_capacity = 4096;
  std::uint64_t dedup_age_us = 60'000'000;
  std::uint64_t default_deadline_us = 5'000'000;
  std::uint64_t drain_grace_us = 5'000'000;
  FleetConfig fleet;
};

struct ServeDaemonStats {
  std::uint64_t submits = 0;           // submit frames seen
  std::uint64_t accepted = 0;          // admitted into the queue
  std::uint64_t completed = 0;         // Result replies sent
  std::uint64_t failed = 0;            // Error replies sent (any code)
  std::uint64_t shed = 0;              // Overloaded rejections
  std::uint64_t deadline_exceeded = 0; // queued + running deadline kills
  std::uint64_t cancelled = 0;
  std::uint64_t dedup_hits = 0;        // cached replies replayed
  std::uint64_t attached_retries = 0;  // retries joined to in-flight work
  std::uint64_t stale_rejected = 0;
  std::uint64_t bad_requests = 0;
  std::uint64_t requeued_lost = 0;     // in-flight requeued after PE death
  std::uint64_t drain_rejects = 0;
  LatencyHistogram latency;            // admission → reply, µs
};

class ServeDaemon {
 public:
  ServeDaemon(const Program& prog, ServeConfig cfg);
  ~ServeDaemon();
  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Binds, listens and starts the fleet. Call before run().
  void start();
  std::uint16_t port() const { return port_; }

  /// The event loop; returns after a drain completes. Safe to run on a
  /// background thread (tests do) — request_drain() is the only cross-
  /// thread entry point.
  void run();

  /// SIGTERM path: one atomic store, safe from a signal handler.
  void request_drain() { draining_.store(true, std::memory_order_release); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  ServeFleet& fleet() { return *fleet_; }
  const ServeDaemonStats& stats() const { return stats_; }
  std::string stats_json() const;

 private:
  struct Conn {
    int fd = -1;
    std::uint64_t gen = 0;
    net::FrameReader reader;
    std::vector<std::uint8_t> out;
  };
  struct Waiter {
    std::size_t conn;
    std::uint64_t gen;
  };
  struct PendingReq {
    ServeRequest req;
    std::uint64_t abs_deadline_us = 0;
    std::uint64_t admitted_us = 0;
    std::vector<Waiter> waiters;
  };
  struct InFlight {
    ServeRequest req;
    std::uint32_t pe = 0;
    std::uint64_t abs_deadline_us = 0;
    std::uint64_t admitted_us = 0;
    std::uint64_t last_cancel_nudge_us = 0;
    std::vector<Waiter> waiters;
  };

  void accept_new();
  void read_conn(std::size_t ci);
  void close_conn(std::size_t ci);
  void send_to(const Waiter& w, const ServeReply& r);
  void send_to_all(const std::vector<Waiter>& ws, const ServeReply& r);
  void flush_conn(std::size_t ci);
  void handle_submit(std::size_t ci, const net::DataMsg& m);
  void handle_cancel(std::size_t ci, const net::DataMsg& m);
  void finish(std::uint64_t id, const ServeReply& r,
              const std::vector<Waiter>& waiters, std::uint64_t admitted_us);
  void dispatch();
  void sweep_deadlines();
  void absorb_fleet_events();
  ServeReply make_error(std::uint64_t id, ServeError e, const std::string& t);

  const Program& prog_;
  ServeConfig cfg_;
  std::unique_ptr<ServeFleet> fleet_;
  AdmissionController admission_;
  DedupWindow dedup_;
  ServeDaemonStats stats_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<Conn> conns_;
  std::uint64_t next_gen_ = 1;
  std::deque<PendingReq> queue_;
  std::map<std::uint64_t, InFlight> inflight_;
  std::atomic<bool> draining_{false};
  bool activity_ = false;  // set by handlers; idle loop sleeps when clear
};

}  // namespace ph::serve
