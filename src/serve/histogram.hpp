// Log-bucketed latency histogram for the serving layer.
//
// Latencies span four orders of magnitude between a warm sumeuler hit and
// a deadline-killed matmul under overload, so fixed-width buckets either
// waste memory or crush the tail. Buckets grow geometrically (~7% wide:
// 16 sub-buckets per octave), which bounds the quantile error well below
// the scheduling noise the daemon itself introduces. Recording is O(1)
// and allocation-free after construction — safe to call from the daemon
// event loop per completed request.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

namespace ph::serve {

class LatencyHistogram {
 public:
  static constexpr std::uint32_t kSubBuckets = 16;  // per power of two
  static constexpr std::uint32_t kOctaves = 32;     // up to ~2^32 us ≈ 71 min
  static constexpr std::uint32_t kBuckets = kSubBuckets * kOctaves;

  void record(std::uint64_t us) {
    buckets_[bucket_of(us)]++;
    count_++;
    sum_us_ += us;
    max_us_ = std::max(max_us_, us);
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t max_us() const { return max_us_; }
  double mean_us() const {
    return count_ ? static_cast<double>(sum_us_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// Quantile in µs (q in [0,1]); returns the representative value of the
  /// bucket holding the q-th sample (midpoint), so p999 of an empty or
  /// tiny histogram degrades gracefully to the max.
  std::uint64_t quantile_us(double q) const {
    if (count_ == 0) return 0;
    std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    for (std::uint32_t b = 0; b < kBuckets; ++b) {
      seen += buckets_[b];
      if (seen > rank) return representative(b);
    }
    return max_us_;
  }

  void merge(const LatencyHistogram& o) {
    for (std::uint32_t b = 0; b < kBuckets; ++b) buckets_[b] += o.buckets_[b];
    count_ += o.count_;
    sum_us_ += o.sum_us_;
    max_us_ = std::max(max_us_, o.max_us_);
  }

  void clear() {
    buckets_.fill(0);
    count_ = sum_us_ = max_us_ = 0;
  }

 private:
  static std::uint32_t bucket_of(std::uint64_t us) {
    if (us < kSubBuckets) return static_cast<std::uint32_t>(us);
    // Octave = position of the leading bit; sub-bucket = next 4 bits.
    const std::uint32_t msb = 63 - static_cast<std::uint32_t>(
        __builtin_clzll(us));
    const std::uint32_t octave = msb - 3;  // first 16 values are octave 0
    const std::uint32_t sub = static_cast<std::uint32_t>(
        (us >> (msb - 4)) & (kSubBuckets - 1));
    const std::uint32_t b = octave * kSubBuckets + sub;
    return std::min(b, kBuckets - 1);
  }

  static std::uint64_t representative(std::uint32_t b) {
    if (b < kSubBuckets) return b;
    const std::uint32_t octave = b / kSubBuckets;
    const std::uint32_t sub = b % kSubBuckets;
    const std::uint64_t base = std::uint64_t{1} << (octave + 3);
    const std::uint64_t width = base / kSubBuckets;
    return base + sub * width + width / 2;
  }

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_us_ = 0;
  std::uint64_t max_us_ = 0;
};

}  // namespace ph::serve
