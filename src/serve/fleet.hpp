// ServeFleet — a persistent fork-per-PE worker pool for phserved.
//
// The supervision architecture is EdenProcDriver's (PR 6) re-aimed at a
// daemon: workers are forked once over a pre-built net::ProcTransport
// (shm byte rings or framed localhost TCP — every wire resource exists
// before fork, so nothing leaks when a child is SIGKILLed), announce
// liveness with MsgKind::Heartbeat frames, and are reaped by
// waitpid(WNOHANG) plus heartbeat-silence detection. The differences are
// what "long-lived" forces:
//
//   * no fixed topology — a worker executes catalog requests on a fresh
//     per-request Machine instead of a fork-frozen Eden process graph, so
//     the fleet outlives any one computation;
//   * deadline/cancel propagation — each request's absolute deadline
//     travels in its Submit frame and is enforced *inside* Machine::step
//     via the cooperative cancel hook, which doubles as the worker's
//     heartbeat tick and control-plane poll;
//   * a circuit breaker instead of RtsInternalError — exhausting the
//     restart budget (-FR) quarantines the PE (breaker Open) and the
//     fleet keeps serving on the survivors; a HalfOpen probe respawn
//     later readmits the PE if it proves healthy;
//   * graceful drain — Shutdown lets a busy worker finish its in-flight
//     request, ship final stats and _Exit(0); stragglers are killed after
//     a bounded grace so drain cannot hang the daemon.
//
// The supervisor side is single-threaded and non-blocking: the daemon's
// event loop calls tick() which never sleeps.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/proc.hpp"
#include "rts/fault.hpp"
#include "serve/admission.hpp"
#include "serve/catalog.hpp"
#include "serve/wire.hpp"

namespace ph::serve {

struct FleetConfig {
  std::uint32_t n_pes = 4;
  net::ProcWire wire = net::ProcWire::Shm;
  /// Serve traffic is one small frame per request/reply, so the rings can
  /// be far smaller than Eden's packet streams need.
  std::size_t ring_bytes = std::size_t{1} << 18;
  /// Heartbeat knobs, the restart budget (-FR) and the chaos kill (-Fc)
  /// all reuse the PR 6 fault-plan grammar.
  FaultPlan fault;
  RtsConfig worker_rts;
  std::uint64_t breaker_cooldown_us = 2'000'000;
  /// Runs in the child right after fork(), before the worker loop — the
  /// daemon closes its listening/client sockets here so a worker never
  /// holds a client connection open past the parent's close().
  std::function<void()> post_fork_child;
};

struct FleetStats {
  std::uint64_t deaths = 0;
  std::uint64_t respawns = 0;
  std::uint64_t quarantines = 0;  // breaker trips into Open
  std::uint64_t probes = 0;       // HalfOpen respawn attempts
  std::uint64_t executed = 0;     // requests completed by workers (final Stats)
  std::uint64_t killed = 0;       // request threads killed in workers
  std::uint64_t chaos_kills = 0;  // -Fc / inject_kill SIGKILLs delivered
};

/// One tick()'s worth of supervisor observations.
struct FleetEvents {
  std::vector<ServeReply> replies;       // Result/Error frames from workers
  std::vector<std::uint64_t> lost_ids;   // in-flight ids whose PE died
};

class ServeFleet {
 public:
  ServeFleet(const Program& prog, FleetConfig cfg);
  ~ServeFleet();
  ServeFleet(const ServeFleet&) = delete;
  ServeFleet& operator=(const ServeFleet&) = delete;

  void start();
  /// µs since the fleet epoch — the clock deadlines are expressed in.
  std::uint64_t now_us() const;
  std::uint32_t n_pes() const { return cfg_.n_pes; }

  // --- scheduling surface (the daemon's dispatcher) -------------------------
  /// Alive, not quarantined, not busy.
  bool pe_available(std::uint32_t pe) const;
  std::optional<std::uint32_t> pick_worker() const;
  std::uint32_t healthy_workers() const;  // alive or respawning, not quarantined
  void submit(std::uint32_t pe, const ServeRequest& req,
              std::uint64_t abs_deadline_us);
  void cancel(std::uint32_t pe, std::uint64_t request_id);

  /// One non-blocking supervision pass: drain worker frames, execute due
  /// chaos kills, reap, detect silence, respawn/probe, quarantine.
  FleetEvents tick();

  /// Graceful stop: Shutdown to every live worker, bounded reap, SIGKILL
  /// stragglers. After drain() no child of this process remains (waitpid
  /// confirmed) and the transport is stopped.
  void drain(std::uint64_t grace_us = 1'000'000);

  // --- chaos / introspection ------------------------------------------------
  pid_t pe_pid(std::uint32_t pe) const;
  /// Queues a SIGKILL for `pe`, delivered on the next tick. Safe to call
  /// from another thread (tests race it against live traffic).
  void inject_kill(std::uint32_t pe);
  BreakerState breaker_state(std::uint32_t pe) const;
  const FleetStats& stats() const { return stats_; }
  std::vector<pid_t> spawned_pids() const;  // every pid ever forked

 private:
  struct Slot {
    pid_t pid = -1;
    std::uint64_t deaths = 0;
    std::uint64_t last_beat = 0;
    bool beat_seen = false;
    std::uint64_t respawn_at = 0;  // 0 = none scheduled
    bool probe = false;            // current incarnation is a HalfOpen probe
    std::optional<std::uint64_t> inflight;  // request id being executed
    std::uint64_t last_dispatch = 0;        // LRU tiebreak for pick_worker
  };

  void spawn(std::uint32_t pe);
  void on_death(std::uint32_t pe, std::uint64_t now, const char* how,
                FleetEvents& ev);
  void reap_and_detect(std::uint64_t now, FleetEvents& ev);
  void drain_frames(std::uint64_t now, FleetEvents* ev);
  [[noreturn]] void worker_main(std::uint32_t pe);

  const Program& prog_;
  FleetConfig cfg_;
  FaultInjector injector_;
  std::unique_ptr<net::ProcTransport> transport_;
  std::vector<Slot> slots_;
  std::vector<CircuitBreaker> breakers_;
  std::vector<pid_t> spawned_;
  FleetStats stats_;
  std::chrono::steady_clock::time_point epoch_;
  std::uint64_t hb_interval_us_ = 0;
  std::uint64_t hb_timeout_us_ = 0;
  bool started_ = false;
  bool chaos_fired_ = false;
  std::atomic<std::int32_t> kill_request_{-1};  // pe index, -1 = none
};

}  // namespace ph::serve
