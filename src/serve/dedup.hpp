// Idempotent request IDs — the dedup window.
//
// A client that loses its connection mid-request retries with the *same*
// id; the daemon must never double-execute (requests are priced by the
// work they do, and the chaos scenario retries aggressively). The window
// remembers, per id: in-flight (attach the retry to the running
// execution) or completed (replay the cached reply). Ids below the
// horizon — evicted by capacity or age — are rejected as Stale rather
// than re-run: re-execution of a forgotten id is exactly the
// double-charge the window exists to prevent.
//
// The horizon trick requires ids to be monotonically increasing per
// client, which the ServeClient enforces; it mirrors how ChannelEndpoint
// receivers use expected_cseq to tell a duplicate from a fresh message.
#pragma once

#include <cstdint>
#include <map>

#include "serve/wire.hpp"

namespace ph::serve {

class DedupWindow {
 public:
  enum class Verdict : std::uint8_t { Fresh, InFlight, Completed, Stale };

  DedupWindow(std::size_t capacity, std::uint64_t max_age_us)
      : capacity_(capacity ? capacity : 1), max_age_us_(max_age_us) {}

  /// Classifies an incoming id. For Completed the cached reply is in
  /// `*out` afterwards.
  Verdict check(std::uint64_t id, std::uint64_t now, ServeReply* out) {
    sweep(now);
    auto it = entries_.find(id);
    if (it != entries_.end()) {
      if (!it->second.done) return Verdict::InFlight;
      if (out != nullptr) *out = it->second.reply;
      return Verdict::Completed;
    }
    if (id <= horizon_ && horizon_ != 0) return Verdict::Stale;
    return Verdict::Fresh;
  }

  /// Registers an admitted id (execution starting or queued).
  void begin(std::uint64_t id, std::uint64_t now) {
    Entry& e = entries_[id];
    e.done = false;
    e.stored_at = now;
    evict_to_capacity();
  }

  /// Caches the final reply for an id; later duplicates replay it.
  void complete(std::uint64_t id, const ServeReply& reply, std::uint64_t now) {
    Entry& e = entries_[id];
    e.done = true;
    e.reply = reply;
    e.stored_at = now;
    evict_to_capacity();
  }

  /// Drops an id without caching (e.g. shed before execution) so a retry
  /// is Fresh again.
  void forget(std::uint64_t id) { entries_.erase(it_or_end(id)); }

  std::uint64_t horizon() const { return horizon_; }
  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    bool done = false;
    ServeReply reply;
    std::uint64_t stored_at = 0;
  };

  std::map<std::uint64_t, Entry>::iterator it_or_end(std::uint64_t id) {
    return entries_.find(id);
  }

  void advance_horizon(std::uint64_t id) {
    if (id > horizon_) horizon_ = id;
  }

  /// Capacity eviction takes the lowest ids (the oldest under monotonic
  /// assignment) but never an in-flight entry — losing one would let a
  /// retry double-execute.
  void evict_to_capacity() {
    auto it = entries_.begin();
    while (entries_.size() > capacity_ && it != entries_.end()) {
      if (it->second.done) {
        advance_horizon(it->first);
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void sweep(std::uint64_t now) {
    if (max_age_us_ == 0) return;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->second.done && now - it->second.stored_at > max_age_us_) {
        advance_horizon(it->first);
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
  }

  std::size_t capacity_;
  std::uint64_t max_age_us_;
  std::map<std::uint64_t, Entry> entries_;  // ordered: eviction walks low ids
  std::uint64_t horizon_ = 0;  // ids <= horizon and absent are Stale
};

}  // namespace ph::serve
