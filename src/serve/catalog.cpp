#include "serve/catalog.hpp"

#include "progs/all.hpp"
#include "rts/marshal.hpp"

namespace ph::serve {

namespace {

// Hard parameter bounds: a request is priced in advance, so the largest
// admissible evaluation must stay well under one deadline's worth of
// work on one worker.
constexpr std::int64_t kMaxSumEulerN = 5000;
constexpr std::int64_t kMaxMatN = 64;
constexpr std::int64_t kMaxApspN = 64;

const std::vector<CatalogEntry> kEntries = {
    {"sumeuler", 2, "{n, chunk}: sum of Euler totients 1..n"},
    {"matmul", 2, "{n, seed}: checksum of n×n matMulSeq product"},
    {"apsp", 2, "{n, seed}: checksum of all-pairs shortest paths"},
};

[[noreturn]] void bad(const std::string& what) { throw CatalogError(what); }

void need_params(const std::string& name,
                 const std::vector<std::int64_t>& params, std::size_t n) {
  if (params.size() != n)
    bad(name + " takes " + std::to_string(n) + " params, got " +
        std::to_string(params.size()));
}

void bound(const std::string& name, const char* param, std::int64_t v,
           std::int64_t lo, std::int64_t hi) {
  if (v < lo || v > hi)
    bad(name + ": " + param + "=" + std::to_string(v) + " outside [" +
        std::to_string(lo) + ", " + std::to_string(hi) + "]");
}

}  // namespace

const std::vector<CatalogEntry>& catalog_entries() { return kEntries; }

const CatalogEntry* catalog_find(const std::string& name) {
  for (const CatalogEntry& e : kEntries)
    if (name == e.name) return &e;
  return nullptr;
}

Program make_serve_program() { return make_full_program(); }

Tso* catalog_spawn(Machine& m, const Program& prog, const std::string& name,
                   const std::vector<std::int64_t>& params) {
  if (name == "sumeuler") {
    need_params(name, params, 2);
    const std::int64_t n = params[0], chunk = params[1];
    bound(name, "n", n, 1, kMaxSumEulerN);
    bound(name, "chunk", chunk, 1, kMaxSumEulerN);
    std::vector<Obj*> held(2, nullptr);
    RootGuard guard(m, held);  // n > 1024 misses the small-int cache
    held[0] = make_int(m, 0, chunk);
    held[1] = make_int(m, 0, n);
    return m.spawn_apply(prog.find("sumEulerPar"), {held[0], held[1]}, 0);
  }
  if (name == "matmul") {
    need_params(name, params, 2);
    const std::int64_t n = params[0], seed = params[1];
    bound(name, "n", n, 1, kMaxMatN);
    Mat a = random_matrix(static_cast<std::size_t>(n),
                          static_cast<std::uint64_t>(seed));
    Mat b = random_matrix(static_cast<std::size_t>(n),
                          static_cast<std::uint64_t>(seed) + 1);
    std::vector<Obj*> held(2, nullptr);
    RootGuard guard(m, held);  // the second matrix build may collect
    held[0] = make_int_matrix(m, 0, a);
    held[1] = make_int_matrix(m, 0, b);
    // matSum (matMulSeq a b): the product matrix never round-trips to the
    // host — the worker replies with the checksum word.
    Obj* prod =
        make_apply_thunk(m, 0, prog.find("matMulSeq"), {held[0], held[1]});
    held[0] = prod;
    return m.spawn_apply(prog.find("matSum"), {prod}, 0);
  }
  if (name == "apsp") {
    need_params(name, params, 2);
    const std::int64_t n = params[0], seed = params[1];
    bound(name, "n", n, 1, kMaxApspN);
    DistMat dm = random_graph(static_cast<std::size_t>(n),
                              static_cast<std::uint64_t>(seed));
    std::vector<Obj*> held(1, nullptr);
    RootGuard guard(m, held);
    held[0] = make_int_matrix(m, 0, dm);
    // n ≤ 64 hits the static small-int cache, so make_int cannot collect
    // and move the matrix after the fact.
    return m.spawn_apply(prog.find("apspChecksum"),
                         {make_int(m, 0, n), held[0]}, 0);
  }
  bad("unknown program '" + name + "'");
}

std::int64_t catalog_read_result(const std::string& name, Obj* result) {
  (void)name;  // every entry evaluates to a boxed integer
  return read_int(result);
}

std::int64_t catalog_oracle(const std::string& name,
                            const std::vector<std::int64_t>& params) {
  if (name == "sumeuler") return sum_euler_reference(params.at(0));
  if (name == "matmul") {
    const std::size_t n = static_cast<std::size_t>(params.at(0));
    const std::uint64_t seed = static_cast<std::uint64_t>(params.at(1));
    return mat_checksum(matmul_reference(random_matrix(n, seed),
                                         random_matrix(n, seed + 1)));
  }
  if (name == "apsp") {
    const std::size_t n = static_cast<std::size_t>(params.at(0));
    const std::uint64_t seed = static_cast<std::uint64_t>(params.at(1));
    return apsp_checksum(floyd_warshall(random_graph(n, seed)));
  }
  bad("unknown program '" + name + "'");
}

}  // namespace ph::serve
