#include "serve/wire.hpp"

#include <cstring>

namespace ph::serve {

namespace {

/// Request names and error texts are short; a bound keeps a corrupt
/// length word from ballooning a decode.
constexpr std::size_t kMaxStringWords = 1024;
constexpr std::size_t kMaxParams = 64;

net::DataMsg ctrl(ServeOp op, std::uint64_t id) {
  net::DataMsg m;
  m.kind = net::MsgKind::Ctrl;
  m.channel = static_cast<std::uint64_t>(op);
  m.cseq = id;
  return m;
}

bool take(const std::vector<Word>& w, std::size_t& pos, std::uint64_t& out) {
  if (pos >= w.size()) return false;
  out = static_cast<std::uint64_t>(w[pos++]);
  return true;
}

}  // namespace

const char* serve_op_name(ServeOp op) {
  switch (op) {
    case ServeOp::Submit: return "Submit";
    case ServeOp::Cancel: return "Cancel";
    case ServeOp::Result: return "Result";
    case ServeOp::Error: return "Error";
    case ServeOp::Overloaded: return "Overloaded";
    case ServeOp::Shutdown: return "Shutdown";
    case ServeOp::WorkerStats: return "WorkerStats";
  }
  return "?";
}

const char* serve_error_name(ServeError e) {
  switch (e) {
    case ServeError::BadRequest: return "BadRequest";
    case ServeError::UnknownProgram: return "UnknownProgram";
    case ServeError::DeadlineExceeded: return "DeadlineExceeded";
    case ServeError::Cancelled: return "Cancelled";
    case ServeError::PeLost: return "PeLost";
    case ServeError::Draining: return "Draining";
    case ServeError::Stale: return "Stale";
    case ServeError::Internal: return "Internal";
  }
  return "?";
}

void pack_string(const std::string& s, std::vector<Word>& out) {
  out.push_back(static_cast<Word>(s.size()));
  for (std::size_t i = 0; i < s.size(); i += 8) {
    std::uint64_t w = 0;
    std::memcpy(&w, s.data() + i, std::min<std::size_t>(8, s.size() - i));
    out.push_back(static_cast<Word>(w));
  }
}

std::optional<std::string> unpack_string(const std::vector<Word>& words,
                                         std::size_t& pos) {
  std::uint64_t len = 0;
  if (!take(words, pos, len)) return std::nullopt;
  const std::size_t n_words = (len + 7) / 8;
  if (n_words > kMaxStringWords || pos + n_words > words.size())
    return std::nullopt;
  std::string s(static_cast<std::size_t>(len), '\0');
  for (std::size_t i = 0; i < len; i += 8) {
    std::uint64_t w = static_cast<std::uint64_t>(words[pos++]);
    std::memcpy(s.data() + i, &w, std::min<std::size_t>(8, len - i));
  }
  return s;
}

net::DataMsg encode_submit(const ServeRequest& req) {
  net::DataMsg m = ctrl(ServeOp::Submit, req.id);
  std::vector<Word>& w = m.packet.words;
  w.push_back(static_cast<Word>(req.deadline_us));
  pack_string(req.program, w);
  w.push_back(static_cast<Word>(req.params.size()));
  for (std::int64_t p : req.params) w.push_back(static_cast<Word>(p));
  return m;
}

net::DataMsg encode_cancel(std::uint64_t id) {
  return ctrl(ServeOp::Cancel, id);
}

net::DataMsg encode_shutdown() { return ctrl(ServeOp::Shutdown, 0); }

net::DataMsg encode_worker_stats(std::uint64_t executed, std::uint64_t killed) {
  net::DataMsg m = ctrl(ServeOp::WorkerStats, 0);
  m.packet.words = {static_cast<Word>(executed), static_cast<Word>(killed)};
  return m;
}

net::DataMsg encode_reply(const ServeReply& r) {
  net::DataMsg m = ctrl(r.op, r.id);
  std::vector<Word>& w = m.packet.words;
  switch (r.op) {
    case ServeOp::Result:
      w.push_back(static_cast<Word>(r.value));
      w.push_back(static_cast<Word>(r.exec_us));
      w.push_back(static_cast<Word>(r.worker_pe));
      break;
    case ServeOp::Error:
      w.push_back(static_cast<Word>(r.error));
      pack_string(r.error_text, w);
      break;
    case ServeOp::Overloaded:
      w.push_back(static_cast<Word>(r.queue_depth));
      w.push_back(static_cast<Word>(r.retry_after_us));
      break;
    default:
      break;
  }
  return m;
}

bool is_serve_op(const net::DataMsg& m) {
  return m.kind == net::MsgKind::Ctrl &&
         m.channel >= static_cast<std::uint64_t>(ServeOp::Submit) &&
         m.channel <= static_cast<std::uint64_t>(ServeOp::WorkerStats);
}

std::optional<ServeRequest> decode_submit(const net::DataMsg& m) {
  if (m.channel != static_cast<std::uint64_t>(ServeOp::Submit))
    return std::nullopt;
  const std::vector<Word>& w = m.packet.words;
  std::size_t pos = 0;
  ServeRequest req;
  req.id = m.cseq;
  std::uint64_t deadline = 0;
  if (!take(w, pos, deadline)) return std::nullopt;
  req.deadline_us = deadline;
  std::optional<std::string> name = unpack_string(w, pos);
  if (!name) return std::nullopt;
  req.program = *name;
  std::uint64_t n_params = 0;
  if (!take(w, pos, n_params)) return std::nullopt;
  if (n_params > kMaxParams || pos + n_params > w.size()) return std::nullopt;
  for (std::uint64_t i = 0; i < n_params; ++i)
    req.params.push_back(static_cast<std::int64_t>(w[pos++]));
  return req;
}

std::optional<ServeReply> decode_reply(const net::DataMsg& m) {
  if (!is_serve_op(m)) return std::nullopt;
  const std::vector<Word>& w = m.packet.words;
  std::size_t pos = 0;
  ServeReply r;
  r.op = static_cast<ServeOp>(m.channel);
  r.id = m.cseq;
  switch (r.op) {
    case ServeOp::Result: {
      std::uint64_t value = 0, exec = 0, pe = 0;
      if (!take(w, pos, value) || !take(w, pos, exec) || !take(w, pos, pe))
        return std::nullopt;
      r.value = static_cast<std::int64_t>(value);
      r.exec_us = exec;
      r.worker_pe = static_cast<std::uint32_t>(pe);
      return r;
    }
    case ServeOp::Error: {
      std::uint64_t code = 0;
      if (!take(w, pos, code)) return std::nullopt;
      r.error = static_cast<ServeError>(code);
      std::optional<std::string> text = unpack_string(w, pos);
      if (!text) return std::nullopt;
      r.error_text = *text;
      return r;
    }
    case ServeOp::Overloaded: {
      std::uint64_t depth = 0, retry = 0;
      if (!take(w, pos, depth) || !take(w, pos, retry)) return std::nullopt;
      r.queue_depth = depth;
      r.retry_after_us = retry;
      return r;
    }
    case ServeOp::Cancel:
    case ServeOp::Shutdown:
      return r;  // no payload
    case ServeOp::WorkerStats: {
      std::uint64_t executed = 0, killed = 0;
      if (!take(w, pos, executed) || !take(w, pos, killed))
        return std::nullopt;
      r.exec_us = executed;  // reused: executed count rides exec_us
      r.queue_depth = killed;
      return r;
    }
    case ServeOp::Submit:
      return std::nullopt;  // submits are not replies
  }
  return std::nullopt;
}

}  // namespace ph::serve
