#include "serve/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace ph::serve {

ServeClient::ServeClient(ServeClient&& o) noexcept { *this = std::move(o); }

ServeClient& ServeClient::operator=(ServeClient&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
    reader_ = std::move(o.reader_);
    out_ = std::move(o.out_);
    stash_ = std::move(o.stash_);
  }
  return *this;
}

void ServeClient::connect(std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("ServeClient: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error(std::string("ServeClient: connect failed: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  const int fl = fcntl(fd_, F_GETFL, 0);
  fcntl(fd_, F_SETFL, fl | O_NONBLOCK);
  reader_ = net::FrameReader{};
  stash_.clear();
  out_.clear();
}

void ServeClient::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void ServeClient::send_msg(const net::DataMsg& m) {
  if (fd_ < 0) throw std::runtime_error("ServeClient: not connected");
  const std::vector<std::uint8_t> frame = net::encode_frame(m);
  out_.insert(out_.end(), frame.begin(), frame.end());
  flush();
}

void ServeClient::flush() {
  while (fd_ >= 0 && !out_.empty()) {
    const ssize_t n = ::write(fd_, out_.data(), out_.size());
    if (n > 0) {
      out_.erase(out_.begin(), out_.begin() + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    close();
    return;
  }
}

void ServeClient::submit(const ServeRequest& req) {
  send_msg(encode_submit(req));
}

void ServeClient::cancel(std::uint64_t id) { send_msg(encode_cancel(id)); }

bool ServeClient::pump() {
  if (fd_ < 0) return false;
  flush();
  std::uint8_t buf[65536];
  for (;;) {
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      reader_.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    close();
    return false;
  }
}

std::optional<ServeReply> ServeClient::poll() {
  if (!stash_.empty()) {
    ServeReply r = stash_.front();
    stash_.erase(stash_.begin());
    return r;
  }
  pump();
  net::DataMsg m;
  for (;;) {
    try {
      if (!reader_.next(m)) return std::nullopt;
    } catch (const net::FrameError&) {
      continue;
    }
    std::optional<ServeReply> r = decode_reply(m);
    if (r) return r;
  }
}

std::optional<ServeReply> ServeClient::wait(std::uint64_t id,
                                            std::uint64_t timeout_us) {
  const auto t0 = std::chrono::steady_clock::now();
  for (;;) {
    for (std::size_t i = 0; i < stash_.size(); ++i)
      if (stash_[i].id == id) {
        ServeReply r = stash_[i];
        stash_.erase(stash_.begin() + static_cast<std::ptrdiff_t>(i));
        return r;
      }
    std::optional<ServeReply> r = poll();
    if (r) {
      if (r->id == id) return r;
      stash_.push_back(*r);
      continue;
    }
    if (fd_ < 0) return std::nullopt;  // connection died
    const auto el = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    if (static_cast<std::uint64_t>(el) > timeout_us) return std::nullopt;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

std::optional<ServeReply> ServeClient::wait_any(std::uint64_t timeout_us) {
  const auto t0 = std::chrono::steady_clock::now();
  for (;;) {
    std::optional<ServeReply> r = poll();
    if (r) return r;
    if (fd_ < 0) return std::nullopt;
    const auto el = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    if (static_cast<std::uint64_t>(el) > timeout_us) return std::nullopt;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

}  // namespace ph::serve
