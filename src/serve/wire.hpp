// Serving wire protocol — request/reply messages for phserved.
//
// Everything rides the existing CRC-framed wire (net::frame /
// net::FrameReader): a serve message is a DataMsg of kind Ctrl whose
// `channel` field carries the ServeOp, `cseq` carries the request id and
// whose packet words hold the op-specific payload. Reusing the Eden frame
// format means the daemon's client socket and the supervisor↔worker
// control plane get resynchronisation after torn writes, CRC rejection of
// bit flips and the 64MB body bound for free — and `edentv`-style tooling
// can decode a serve stream with the same reader.
//
// Payload layouts (little-endian words):
//   Submit     [deadline_us, n_name_words, name..., n_params, params...]
//   Cancel     []
//   Result     [value, exec_us, worker_pe]
//   Error      [code, n_text_words, text...]
//   Overloaded [queue_depth, retry_after_us]
//   Shutdown   []                        (supervisor → worker only)
//   WorkerStats[executed, killed]        (worker → supervisor, pre-exit)
//
// Strings pack 8 bytes per word after a length word; ids are chosen by
// the client and must be monotonically increasing per connection — the
// dedup window leans on that order to tell a stale retry from a fresh id.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/frame.hpp"

namespace ph::serve {

/// Ops live above 100 so a mis-routed Eden ProcCtrl opcode (1..5 in the
/// same channel field) can never alias a serve message.
enum class ServeOp : std::uint64_t {
  Submit = 101,
  Cancel = 102,
  Result = 103,
  Error = 104,
  Overloaded = 105,
  Shutdown = 106,
  WorkerStats = 107,
};

const char* serve_op_name(ServeOp op);

enum class ServeError : std::uint64_t {
  BadRequest = 1,       // malformed payload / bad params
  UnknownProgram = 2,   // name not in the catalog
  DeadlineExceeded = 3,
  Cancelled = 4,
  PeLost = 5,           // worker died with the request in flight (retryable)
  Draining = 6,         // daemon is in SIGTERM drain; submit elsewhere
  Stale = 7,            // id below the dedup horizon — already forgotten
  Internal = 8,
};

const char* serve_error_name(ServeError e);

struct ServeRequest {
  std::uint64_t id = 0;
  /// Relative to submission on the client wire; rewritten to an absolute
  /// fleet-epoch µs deadline before it reaches a worker. 0 = daemon default.
  std::uint64_t deadline_us = 0;
  std::string program;
  std::vector<std::int64_t> params;
};

struct ServeReply {
  ServeOp op = ServeOp::Result;
  std::uint64_t id = 0;
  // Result
  std::int64_t value = 0;
  std::uint64_t exec_us = 0;
  std::uint32_t worker_pe = 0;
  // Error
  ServeError error = ServeError::Internal;
  std::string error_text;
  // Overloaded
  std::uint64_t queue_depth = 0;
  std::uint64_t retry_after_us = 0;
};

// --- encoding ---------------------------------------------------------------
net::DataMsg encode_submit(const ServeRequest& req);
net::DataMsg encode_cancel(std::uint64_t id);
net::DataMsg encode_reply(const ServeReply& r);
net::DataMsg encode_shutdown();
net::DataMsg encode_worker_stats(std::uint64_t executed, std::uint64_t killed);

// --- decoding ---------------------------------------------------------------
/// Parses a Submit payload. Returns nullopt (never throws) on a
/// malformed body — the daemon answers BadRequest instead of dying.
std::optional<ServeRequest> decode_submit(const net::DataMsg& m);
/// Parses any worker/daemon→client reply op. nullopt on malformed body.
std::optional<ServeReply> decode_reply(const net::DataMsg& m);

/// True when the DataMsg carries a serve op (vs an Eden ProcCtrl frame).
bool is_serve_op(const net::DataMsg& m);

// String <-> word helpers (shared with tests).
void pack_string(const std::string& s, std::vector<Word>& out);
std::optional<std::string> unpack_string(const std::vector<Word>& words,
                                         std::size_t& pos);

}  // namespace ph::serve
