// ServeClient — the phserved wire, client side.
//
// A thin blocking-ish helper for loadgen and the tests: connect to a
// localhost port, submit catalog requests, pump replies. Request ids are
// supplied by the caller and must be monotonically increasing — retries
// reuse the *same* id (that is the idempotency contract; the daemon's
// dedup window tells a retry from a fresh request by the id alone).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "serve/wire.hpp"

namespace ph::serve {

class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient() { close(); }
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ServeClient(ServeClient&& o) noexcept;
  ServeClient& operator=(ServeClient&& o) noexcept;

  /// Connects to 127.0.0.1:port. Throws on failure.
  void connect(std::uint16_t port);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// Queues a submit/cancel on the socket (nonblocking write, buffered).
  void submit(const ServeRequest& req);
  void cancel(std::uint64_t id);

  /// Nonblocking: drains the socket, returns the next decoded reply.
  std::optional<ServeReply> poll();
  /// Pumps until a reply for `id` arrives or timeout. Replies for other
  /// ids are buffered and surface on later poll()/wait() calls.
  std::optional<ServeReply> wait(std::uint64_t id, std::uint64_t timeout_us);
  /// Pumps until any reply arrives or timeout.
  std::optional<ServeReply> wait_any(std::uint64_t timeout_us);

 private:
  void send_msg(const net::DataMsg& m);
  void flush();
  bool pump();  // one nonblocking read; false when the conn died

  int fd_ = -1;
  net::FrameReader reader_;
  std::vector<std::uint8_t> out_;
  std::vector<ServeReply> stash_;  // replies read while waiting for another id
};

}  // namespace ph::serve
