#include "serve/fleet.hpp"

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace ph::serve {

namespace {

// The supervision cadence is PR 6's (eden_proc.cpp): the same floors keep
// the two supervisors comparable in the chaos benchmarks.
constexpr std::uint64_t kMinHbIntervalUs = 2000;
constexpr std::uint64_t kMinHbTimeoutUs = 50000;
constexpr std::uint64_t kSpawnGraceUs = 200000;
constexpr std::uint64_t kBackoffBaseUs = 5000;
constexpr std::uint64_t kBackoffCapUs = 200000;
/// µs between control-plane polls inside the worker's cancel hook: how
/// stale a client Cancel can go unnoticed while a request computes.
constexpr std::uint64_t kWorkerNetPollUs = 200;

}  // namespace

ServeFleet::ServeFleet(const Program& prog, FleetConfig cfg)
    : prog_(prog), cfg_(std::move(cfg)), injector_(cfg_.fault) {
  if (cfg_.n_pes == 0) throw std::runtime_error("ServeFleet: need >= 1 PE");
  transport_ = std::make_unique<net::ProcTransport>(cfg_.n_pes, &injector_,
                                                    cfg_.wire, cfg_.ring_bytes);
  transport_->set_cross_process(true);
  breakers_.assign(cfg_.n_pes,
                   CircuitBreaker(cfg_.fault.restart_max,
                                  cfg_.breaker_cooldown_us));
  hb_interval_us_ = std::max<std::uint64_t>(cfg_.fault.heartbeat_interval,
                                            kMinHbIntervalUs);
  hb_timeout_us_ = std::max<std::uint64_t>(
      {cfg_.fault.heartbeat_timeout, kMinHbTimeoutUs, 4 * hb_interval_us_});
}

ServeFleet::~ServeFleet() {
  for (Slot& s : slots_) {
    if (s.pid <= 0) continue;
    kill(s.pid, SIGKILL);
    int st = 0;
    waitpid(s.pid, &st, 0);
    s.pid = -1;
  }
}

std::uint64_t ServeFleet::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void ServeFleet::start() {
  // Every socket end stays open in the supervisor, so EPIPE cannot
  // happen; a SIGPIPE would still kill the daemon if a write raced a
  // worker's death.
  signal(SIGPIPE, SIG_IGN);
  transport_->start();
  slots_.assign(cfg_.n_pes, Slot{});
  epoch_ = std::chrono::steady_clock::now();
  for (std::uint32_t pe = 0; pe < cfg_.n_pes; ++pe) spawn(pe);
  started_ = true;
}

void ServeFleet::spawn(std::uint32_t pe) {
  Slot& s = slots_.at(pe);
  const pid_t pid = fork();
  if (pid < 0) throw std::runtime_error("ServeFleet: fork failed");
  if (pid == 0) {
    if (cfg_.post_fork_child) cfg_.post_fork_child();
    worker_main(pe);  // never returns
  }
  s.pid = pid;
  spawned_.push_back(pid);
  s.respawn_at = 0;
  s.last_beat = now_us() + kSpawnGraceUs;
  s.beat_seen = false;
  s.inflight.reset();
  if (s.deaths != 0) stats_.respawns++;
}

void ServeFleet::on_death(std::uint32_t pe, std::uint64_t now, const char* how,
                          FleetEvents& ev) {
  (void)how;
  Slot& s = slots_.at(pe);
  s.pid = -1;
  s.deaths++;
  stats_.deaths++;
  if (s.inflight) {
    // The request died with its PE; the daemon requeues it (idempotent
    // ids make the replay safe).
    ev.lost_ids.push_back(*s.inflight);
    s.inflight.reset();
  }
  const bool was_tripped = breakers_[pe].tripped();
  const bool tripped = breakers_[pe].on_death(now);
  s.probe = false;
  if (tripped) {
    // Budget exhausted (or a HalfOpen probe died): quarantine — no
    // respawn scheduled, placement shrinks around the PE. This is the
    // daemon's replacement for PR 6's RtsInternalError throw.
    s.respawn_at = 0;
    if (!was_tripped) stats_.quarantines++;
  } else {
    const std::uint64_t backoff = std::min<std::uint64_t>(
        kBackoffBaseUs << std::min<std::uint64_t>(s.deaths - 1, 10),
        kBackoffCapUs);
    s.respawn_at = now + backoff;
  }
}

void ServeFleet::drain_frames(std::uint64_t now, FleetEvents* ev) {
  const std::uint32_t super = transport_->supervisor_endpoint();
  while (std::optional<net::DataMsg> m = transport_->poll(super)) {
    if (m->kind == net::MsgKind::Heartbeat) {
      if (m->src_pe >= slots_.size()) continue;
      Slot& s = slots_[m->src_pe];
      s.last_beat = now;
      s.beat_seen = true;
      continue;
    }
    if (m->kind != net::MsgKind::Ctrl) continue;
    if (static_cast<ServeOp>(m->channel) == ServeOp::WorkerStats) {
      const auto& w = m->packet.words;
      if (w.size() >= 2) {
        stats_.executed += static_cast<std::uint64_t>(w[0]);
        stats_.killed += static_cast<std::uint64_t>(w[1]);
      }
      continue;
    }
    std::optional<ServeReply> r = decode_reply(*m);
    if (!r) continue;
    if (r->op != ServeOp::Result && r->op != ServeOp::Error) continue;
    if (m->src_pe < slots_.size()) {
      Slot& s = slots_[m->src_pe];
      if (s.inflight && *s.inflight == r->id) s.inflight.reset();
      // Any completed reply — even an error reply — proves the worker's
      // control loop healthy: a HalfOpen probe closes its breaker here.
      breakers_[m->src_pe].on_served_ok(now);
      s.probe = false;
      r->worker_pe = m->src_pe;
    }
    if (ev != nullptr) ev->replies.push_back(*r);
  }
}

void ServeFleet::reap_and_detect(std::uint64_t now, FleetEvents& ev) {
  // Death detection #1: reap. A SIGKILLed worker surfaces here.
  for (std::uint32_t pe = 0; pe < cfg_.n_pes; ++pe) {
    Slot& s = slots_[pe];
    if (s.pid <= 0) continue;
    int st = 0;
    if (waitpid(s.pid, &st, WNOHANG) == s.pid) on_death(pe, now, "reaped", ev);
  }
  // Death detection #2: heartbeat silence (a wedged worker is killed for
  // real first, then treated like any other casualty).
  for (std::uint32_t pe = 0; pe < cfg_.n_pes; ++pe) {
    Slot& s = slots_[pe];
    if (s.pid <= 0 || now <= s.last_beat || now - s.last_beat <= hb_timeout_us_)
      continue;
    kill(s.pid, SIGKILL);
    int st = 0;
    waitpid(s.pid, &st, 0);
    on_death(pe, now, "heartbeat silence", ev);
  }
}

FleetEvents ServeFleet::tick() {
  FleetEvents ev;
  if (!started_) return ev;
  std::uint64_t now = now_us();

  // The fault plan's -Fc entry, executed for real, plus any test-injected
  // kill: one SIGKILL, delivered mid-traffic.
  const FaultPlan& plan = injector_.plan();
  if (plan.crashes() && !chaos_fired_ && plan.crash_pe < cfg_.n_pes &&
      now >= plan.crash_at && slots_[plan.crash_pe].pid > 0) {
    kill(slots_[plan.crash_pe].pid, SIGKILL);
    chaos_fired_ = true;
    stats_.chaos_kills++;
  }
  const std::int32_t kr = kill_request_.exchange(-1, std::memory_order_acq_rel);
  if (kr >= 0 && static_cast<std::uint32_t>(kr) < cfg_.n_pes &&
      slots_[static_cast<std::uint32_t>(kr)].pid > 0) {
    kill(slots_[static_cast<std::uint32_t>(kr)].pid, SIGKILL);
    stats_.chaos_kills++;
  }

  drain_frames(now, &ev);
  reap_and_detect(now, ev);

  // Due respawns (exponential backoff set by on_death).
  now = now_us();
  for (std::uint32_t pe = 0; pe < cfg_.n_pes; ++pe) {
    Slot& s = slots_[pe];
    if (s.pid > 0 || s.respawn_at == 0 || now < s.respawn_at) continue;
    spawn(pe);
  }

  // Quarantined PEs whose breaker cooled down to HalfOpen get one probe
  // incarnation; serving a request closes the breaker, dying re-opens it.
  for (std::uint32_t pe = 0; pe < cfg_.n_pes; ++pe) {
    Slot& s = slots_[pe];
    if (s.pid > 0 || s.respawn_at != 0 || !breakers_[pe].tripped()) continue;
    if (breakers_[pe].state(now) != BreakerState::HalfOpen) continue;
    spawn(pe);
    s.probe = true;
    stats_.probes++;
  }
  return ev;
}

bool ServeFleet::pe_available(std::uint32_t pe) const {
  if (!started_ || pe >= slots_.size()) return false;
  const Slot& s = slots_[pe];
  return s.pid > 0 && !s.inflight &&
         (!breakers_[pe].tripped() || s.probe);
}

std::optional<std::uint32_t> ServeFleet::pick_worker() const {
  std::optional<std::uint32_t> best;
  for (std::uint32_t pe = 0; pe < slots_.size(); ++pe) {
    if (!pe_available(pe)) continue;
    if (!best || slots_[pe].last_dispatch < slots_[*best].last_dispatch)
      best = pe;
  }
  return best;
}

std::uint32_t ServeFleet::healthy_workers() const {
  std::uint32_t n = 0;
  for (std::uint32_t pe = 0; pe < breakers_.size(); ++pe)
    if (!breakers_[pe].tripped()) n++;
  return n;
}

void ServeFleet::submit(std::uint32_t pe, const ServeRequest& req,
                        std::uint64_t abs_deadline_us) {
  Slot& s = slots_.at(pe);
  if (s.pid <= 0) throw std::runtime_error("ServeFleet::submit: dead PE");
  ServeRequest wire_req = req;
  wire_req.deadline_us = abs_deadline_us;  // worker clocks are fleet-epoch µs
  net::DataMsg m = encode_submit(wire_req);
  m.src_pe = transport_->supervisor_endpoint();
  transport_->send(pe, m);
  s.inflight = req.id;
  s.last_dispatch = now_us();
}

void ServeFleet::cancel(std::uint32_t pe, std::uint64_t request_id) {
  if (pe >= slots_.size() || slots_[pe].pid <= 0) return;
  net::DataMsg m = encode_cancel(request_id);
  m.src_pe = transport_->supervisor_endpoint();
  transport_->send(pe, m);
}

void ServeFleet::drain(std::uint64_t grace_us) {
  if (!started_) return;
  net::DataMsg sd = encode_shutdown();
  sd.src_pe = transport_->supervisor_endpoint();
  for (std::uint32_t pe = 0; pe < cfg_.n_pes; ++pe)
    if (slots_[pe].pid > 0) transport_->send(pe, sd);
  // Bounded farewell: a busy worker finishes its in-flight request first,
  // so the grace must cover one deadline's worth of work; a wedged worker
  // must not wedge the drain.
  const std::uint64_t deadline = now_us() + grace_us;
  for (;;) {
    bool any_live = false;
    for (std::uint32_t pe = 0; pe < cfg_.n_pes; ++pe) {
      Slot& s = slots_[pe];
      if (s.pid <= 0) continue;
      int st = 0;
      if (waitpid(s.pid, &st, WNOHANG) == s.pid)
        s.pid = -1;
      else
        any_live = true;
    }
    drain_frames(now_us(), nullptr);
    if (!any_live || now_us() > deadline) break;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  for (Slot& s : slots_) {
    if (s.pid <= 0) continue;
    kill(s.pid, SIGKILL);
    int st = 0;
    waitpid(s.pid, &st, 0);
    s.pid = -1;
  }
  transport_->stop();
  started_ = false;
}

pid_t ServeFleet::pe_pid(std::uint32_t pe) const {
  return pe < slots_.size() ? slots_[pe].pid : -1;
}

void ServeFleet::inject_kill(std::uint32_t pe) {
  kill_request_.store(static_cast<std::int32_t>(pe), std::memory_order_release);
}

BreakerState ServeFleet::breaker_state(std::uint32_t pe) const {
  return breakers_.at(pe).state(now_us());
}

std::vector<pid_t> ServeFleet::spawned_pids() const { return spawned_; }

// --------------------------------------------------------------------------
// Worker process. Forked with the whole supervisor address space
// (copy-on-write); exits only via std::_Exit so no parent-owned
// destructor ever runs twice.
// --------------------------------------------------------------------------

void ServeFleet::worker_main(std::uint32_t pe) {
  try {
    net::ProcTransport& tp = *transport_;
    const std::uint32_t super = tp.supervisor_endpoint();
    std::uint64_t progress = 0, executed = 0, killed = 0;
    bool idle_now = true;
    bool shutdown = false;
    bool cancel_current = false;
    std::uint64_t current_id = 0;  // 0 = idle (client ids start at 1)
    std::uint64_t next_hb = 0;
    std::optional<ServeRequest> pending;

    auto send_hb = [&] {
      net::DataMsg h;
      h.kind = net::MsgKind::Heartbeat;
      h.src_pe = pe;
      h.packet.words = {static_cast<Word>(progress),
                        static_cast<Word>(idle_now ? 1 : 0),
                        static_cast<Word>(current_id),
                        static_cast<Word>(executed)};
      tp.send(super, h);
    };
    auto maybe_hb = [&] {
      const std::uint64_t t = now_us();
      if (t >= next_hb) {
        next_hb = t + hb_interval_us_;  // advance first: send may re-enter
        send_hb();
      }
    };
    // Blocked on a full ring whose consumer is slow, the worker must keep
    // announcing its own liveness.
    tp.set_backpressure_hook([&] { maybe_hb(); });

    auto reply_error = [&](std::uint64_t id, ServeError e,
                           const std::string& text) {
      ServeReply r;
      r.op = ServeOp::Error;
      r.id = id;
      r.error = e;
      r.error_text = text;
      r.worker_pe = pe;
      net::DataMsg m = encode_reply(r);
      m.src_pe = pe;
      tp.send(super, m);
    };

    // Drains this worker's control frames. Runs from the idle loop AND
    // from inside Machine::step via the cancel hook — which is exactly
    // how a client Cancel or a drain Shutdown reaches a computation that
    // would otherwise run to completion first.
    auto pump_ctl = [&] {
      while (std::optional<net::DataMsg> m = tp.poll(pe)) {
        if (m->kind != net::MsgKind::Ctrl) continue;
        switch (static_cast<ServeOp>(m->channel)) {
          case ServeOp::Submit: {
            std::optional<ServeRequest> r = decode_submit(*m);
            if (!r) {
              reply_error(m->cseq, ServeError::BadRequest,
                          "malformed submit frame");
            } else if (pending || current_id != 0) {
              // The dispatcher keeps one request per worker; a second
              // submit means supervisor state desynced — refuse loudly.
              reply_error(r->id, ServeError::Internal, "worker busy");
            } else {
              pending = std::move(r);
            }
            break;
          }
          case ServeOp::Cancel:
            if (current_id != 0 && m->cseq == current_id)
              cancel_current = true;
            break;
          case ServeOp::Shutdown:
            shutdown = true;  // finish the in-flight request, then exit
            break;
          default:
            break;
        }
      }
    };

    auto execute = [&](const ServeRequest& req) {
      const std::uint64_t t_start = now_us();
      current_id = req.id;
      cancel_current = false;
      // Request isolation: a fresh Machine per request — a heap blown or
      // a graph corrupted by one evaluation cannot poison the next.
      Machine m(prog_, cfg_.worker_rts);
      Tso* root = nullptr;
      try {
        root = catalog_spawn(m, prog_, req.program, req.params);
      } catch (const CatalogError& e) {
        current_id = 0;
        reply_error(req.id,
                    catalog_find(req.program) != nullptr
                        ? ServeError::BadRequest
                        : ServeError::UnknownProgram,
                    e.what());
        return;
      }
      // The cooperative cancellation poll: deadline and control plane
      // checked alongside the heartbeat tick, from inside step().
      std::uint64_t next_net = 0;
      m.set_cancel_hook([&](const Tso&) -> const char* {
        const std::uint64_t t = now_us();
        if (t >= next_net) {
          next_net = t + kWorkerNetPollUs;
          maybe_hb();
          pump_ctl();
        }
        if (cancel_current) return "cancelled by client";
        if (req.deadline_us != 0 && t >= req.deadline_us)
          return "deadline exceeded";
        return nullptr;
      });

      Capability& c = m.cap(0);
      const RtsConfig& rts = m.config();
      Tso* active = nullptr;
      Tso* oom_tso = nullptr;
      std::uint32_t oom_streak = 0;
      const char* wedged = nullptr;
      bool done = false;
      while (!done) {
        maybe_hb();
        if (m.heap().gc_requested()) m.collect(false);
        if (active == nullptr) {
          active = m.schedule_next(c);
          if (active == nullptr) {
            if (root->state == ThreadState::Finished) break;
            if (!m.work_anywhere()) {
              wedged = "request wedged: no runnable work";
              break;
            }
            continue;
          }
          active->state = ThreadState::Running;
        }
        std::uint32_t steps = 0;
        bool release = false;
        while (steps < rts.quantum_steps && !release) {
          const StepOutcome out = m.step(c, *active);
          steps++;
          if (out == StepOutcome::Ok) {
            if (oom_tso != nullptr) {
              oom_tso = nullptr;
              oom_streak = 0;
            }
            continue;
          }
          if (out == StepOutcome::NeedGc) {
            if (oom_tso == active) {
              oom_streak++;
            } else {
              oom_tso = active;
              oom_streak = 1;
            }
            if (oom_streak >= 3) {
              const bool was_root = active == root;
              m.kill_thread(c, *active, "heap overflow");
              killed++;
              oom_tso = nullptr;
              oom_streak = 0;
              // A helper OOMing means the request as a whole cannot fit:
              // the root retrying the restored thunk would just OOM too.
              if (!was_root) m.kill_thread(c, *root, "heap overflow");
              active = nullptr;
              done = true;
              release = true;
              break;
            }
            m.collect(/*force_major=*/oom_streak >= 2);
            continue;
          }
          if (out == StepOutcome::Blocked) {
            m.blackhole_pending_updates(c, *active);
            active = nullptr;
            release = true;
            break;
          }
          // Finished.
          if (active == root) {
            active = nullptr;
            done = true;
            release = true;
            break;
          }
          if (active->error != nullptr) {
            // A killed helper (deadline/cancel landed on a spark thread):
            // propagate to the root so the request dies promptly instead
            // of re-evaluating the restored thunks.
            m.kill_thread(c, *root, active->error);
            killed++;
            active = nullptr;
            done = true;
            release = true;
            break;
          }
          if (active->is_spark_thread && m.spark_thread_continue(c, *active))
            continue;
          active = nullptr;
          release = true;
          break;
        }
        progress++;
        if (active != nullptr && !release) {
          m.blackhole_pending_updates(c, *active);
          active->state = ThreadState::Runnable;
          c.push_thread(active);
          active = nullptr;
        }
      }
      m.set_cancel_hook({});
      current_id = 0;
      const std::uint64_t exec_us = now_us() - t_start;
      if (wedged != nullptr) {
        reply_error(req.id, ServeError::Internal, wedged);
        return;
      }
      if (root->error != nullptr) {
        ServeError e = ServeError::Internal;
        if (std::strcmp(root->error, "deadline exceeded") == 0)
          e = ServeError::DeadlineExceeded;
        else if (std::strcmp(root->error, "cancelled by client") == 0)
          e = ServeError::Cancelled;
        killed++;
        reply_error(req.id, e, root->error);
        return;
      }
      std::int64_t value = 0;
      try {
        value = catalog_read_result(req.program, root->result);
      } catch (const std::exception& e) {
        reply_error(req.id, ServeError::Internal, e.what());
        return;
      }
      executed++;
      ServeReply r;
      r.op = ServeOp::Result;
      r.id = req.id;
      r.value = value;
      r.exec_us = exec_us;
      r.worker_pe = pe;
      net::DataMsg dm = encode_reply(r);
      dm.src_pe = pe;
      tp.send(super, dm);
    };

    // A worker never exits on its own: even idle it keeps heartbeating
    // until the supervisor says Shutdown — a self-exiting worker would be
    // indistinguishable from a crash.
    while (!shutdown) {
      maybe_hb();
      pump_ctl();
      if (shutdown && !pending) break;
      if (pending) {
        ServeRequest req = std::move(*pending);
        pending.reset();
        idle_now = false;
        execute(req);
        idle_now = true;
        progress++;
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }

    // Final counters home, then vanish without running any parent-owned
    // destructor (we share its whole address-space layout).
    net::DataMsg st = encode_worker_stats(executed, killed);
    st.src_pe = pe;
    tp.send(super, st);
    std::_Exit(0);
  } catch (...) {
    // Any escape (internal error, heap corruption after a torn state) is
    // a crash as far as supervision is concerned.
    std::_Exit(3);
  }
}

}  // namespace ph::serve
