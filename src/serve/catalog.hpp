// The request catalog — named prelude programs a worker can evaluate.
//
// A ServeRequest names a catalog entry plus integer parameters; the
// worker builds the argument graph in a *fresh per-request Machine*
// (request isolation: a heap blown by one request cannot poison the
// next) and spawns the root TSO. Every entry also carries a host-side
// oracle so loadgen and the chaos tests can check each served value
// against the crash-free reference — a serving benchmark whose answers
// drift is measuring a bug, not throughput.
//
// Entries (parameters are validated against hard bounds so a hostile
// request cannot ask for an unbounded evaluation):
//   sumeuler {n, chunk}  Σ φ(1..n) via sumEulerPar       (n ≤ 5000)
//   matmul   {n, seed}   checksum of matMulSeq A·B       (n ≤ 64)
//   apsp     {n, seed}   checksum of apspChecksum        (n ≤ 64)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/program.hpp"
#include "rts/machine.hpp"

namespace ph::serve {

struct CatalogError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct CatalogEntry {
  const char* name;
  std::size_t n_params;
  const char* param_doc;
};

/// All entries (for --list and validation).
const std::vector<CatalogEntry>& catalog_entries();

/// nullptr when the name is unknown.
const CatalogEntry* catalog_find(const std::string& name);

/// The program every worker loads: prelude + all benchmark families.
Program make_serve_program();

/// Validates params and spawns the root TSO for `name` in `m` (cap 0).
/// Throws CatalogError on unknown name / bad params.
Tso* catalog_spawn(Machine& m, const Program& prog, const std::string& name,
                   const std::vector<std::int64_t>& params);

/// Reads the served value off a finished root (checksums matrices).
std::int64_t catalog_read_result(const std::string& name, Obj* result);

/// Host-side reference value (the crash-free oracle).
std::int64_t catalog_oracle(const std::string& name,
                            const std::vector<std::int64_t>& params);

}  // namespace ph::serve
