// Deterministic virtual-time driver for a shared-heap (GpH) machine.
//
// This stands in for the paper's 8-core Intel / 16-core AMD testbeds
// (which we do not have — see DESIGN.md §2): every capability is advanced
// under a global virtual clock, and reduction steps, allocation, context
// switches, steal attempts, the stop-the-world GC barrier and the
// collection pause itself are charged costs from a CostModel. Scheduling
// is deterministic, so every figure regenerated from this driver is
// exactly reproducible.
//
// The barrier protocol mirrors §IV.A.1: when any nursery fills, all
// capabilities must reach a safe point before the (sequential) collector
// runs. Under BarrierPolicy::Naive a mutator only notices at its next
// allocation check (every alloc_check_words); under Improved it is
// interrupted at the next evaluation step.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "rts/config.hpp"
#include "rts/machine.hpp"
#include "trace/trace.hpp"

namespace ph {

struct SimResult {
  std::uint64_t makespan = 0;      // virtual time at which `main` finished
  Obj* value = nullptr;            // main thread's result (WHNF)
  bool deadlocked = false;
  DeadlockDiagnosis diagnosis;     // why, when deadlocked (cycle vs starvation)
  std::uint64_t gc_count = 0;
  std::uint64_t gc_pause_total = 0;  // summed virtual GC pause time
  std::uint64_t mutator_steps = 0;   // total reduction steps over all TSOs
  std::uint64_t heap_overflows = 0;  // TSOs killed by the overflow escalation
};

class SimDriver {
 public:
  explicit SimDriver(Machine& m, CostModel cost = {}, TraceLog* trace = nullptr);

  /// Drives all capabilities until `main` finishes (or deadlock).
  SimResult run(Tso* main_tso);

  /// Extra work performed each slice before scheduling — used by the Eden
  /// layer to deliver messages at the right virtual time. Returns true if
  /// it produced new work.
  using Hook = std::function<bool(std::uint32_t cap, std::uint64_t now)>;
  void set_slice_hook(Hook h) { hook_ = std::move(h); }

  /// A hook can keep the driver alive while external events (messages from
  /// other PEs) are still in flight; see EdenSim.
  using PendingFn = std::function<std::optional<std::uint64_t>()>;
  void set_pending_fn(PendingFn f) { pending_ = std::move(f); }

  std::uint64_t cap_time(std::uint32_t i) const { return caps_[i].time; }

 private:
  struct CapSim {
    Tso* active = nullptr;
    std::uint64_t time = 0;
    bool arrived = false;          // parked at the GC barrier
    std::uint64_t arrive_time = 0;
    std::uint32_t quantum_used = 0;  // steps of the active thread's quantum spent
    // Heap-overflow escalation: consecutive NeedGc outcomes from the same
    // thread (1 → normal GC, 2 → forced major GC, 3 → kill the thread).
    Tso* oom_tso = nullptr;
    std::uint32_t oom_streak = 0;
  };

  void slice(std::uint32_t ci, Tso* main_tso);
  void run_mutator(std::uint32_t ci, Tso* main_tso);
  void idle_tick(std::uint32_t ci);
  void arrive_at_barrier(std::uint32_t ci);
  void finish_gc();
  bool gc_pending() const { return m_.heap().gc_requested(); }
  void charge(std::uint32_t ci, std::uint64_t cost, CapState state);

  Machine& m_;
  CostModel cost_;
  TraceLog* trace_;
  std::vector<CapSim> caps_;
  Hook hook_;
  PendingFn pending_;
  bool force_major_ = false;  // next barrier collection must be major
  bool main_done_ = false;
  bool deadlocked_ = false;
  SimResult result_;
};

}  // namespace ph
