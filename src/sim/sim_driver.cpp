#include "sim/sim_driver.hpp"

#include <algorithm>
#include <limits>

namespace ph {

SimDriver::SimDriver(Machine& m, CostModel cost, TraceLog* trace)
    : m_(m), cost_(cost), trace_(trace), caps_(m.n_caps()) {}

void SimDriver::charge(std::uint32_t ci, std::uint64_t cost, CapState state) {
  CapSim& cs = caps_[ci];
  if (trace_ != nullptr) trace_->record(ci, cs.time, cs.time + cost, state);
  cs.time += cost;
}

SimResult SimDriver::run(Tso* main_tso) {
  main_done_ = false;
  deadlocked_ = false;
  result_ = SimResult{};
  while (!main_done_ && !deadlocked_) {
    // Pick the capability with the smallest clock that is not parked at
    // the GC barrier.
    std::uint32_t best = m_.n_caps();
    std::uint64_t best_time = std::numeric_limits<std::uint64_t>::max();
    for (std::uint32_t i = 0; i < m_.n_caps(); ++i) {
      if (caps_[i].arrived) continue;
      if (caps_[i].time < best_time) {
        best_time = caps_[i].time;
        best = i;
      }
    }
    if (best == m_.n_caps()) {
      // Everyone is at the barrier: run the collection.
      finish_gc();
      continue;
    }
    slice(best, main_tso);
  }
  result_.makespan = 0;
  for (const CapSim& cs : caps_) result_.makespan = std::max(result_.makespan, cs.time);
  // On a clean finish the makespan is the main thread's finish time, which
  // is the clock of the capability that ran it; other caps may have idled
  // beyond it, so prefer the finisher's clock when available.
  result_.value = main_tso->result;
  result_.deadlocked = deadlocked_;
  for (std::size_t i = 0; i < m_.tso_count(); ++i)
    result_.mutator_steps += m_.tso(static_cast<ThreadId>(i))->steps;
  return result_;
}

void SimDriver::slice(std::uint32_t ci, Tso* main_tso) {
  CapSim& cs = caps_[ci];
  Capability& c = m_.cap(ci);

  if (hook_) hook_(ci, cs.time);

  if (cs.active == nullptr) {
    Tso* t = m_.schedule_next(c);
    if (t == nullptr && m_.config().work == WorkPolicy::Steal) {
      t = m_.try_steal(c);
      charge(ci, t != nullptr ? cost_.steal_hit : cost_.steal_miss, CapState::Sync);
    }
    if (t != nullptr) {
      c.idle.store(false, std::memory_order_relaxed);
      cs.active = t;
      t->state = ThreadState::Running;
      // A brand-new thread (spark conversion / fresh spawn) pays creation
      // cost on top of the dispatch switch.
      charge(ci, cost_.context_switch + (t->steps == 0 ? cost_.thread_create : 0),
             CapState::Sync);
      return;
    }
    idle_tick(ci);
    return;
  }
  run_mutator(ci, main_tso);
}

void SimDriver::idle_tick(std::uint32_t ci) {
  CapSim& cs = caps_[ci];
  Capability& c = m_.cap(ci);
  c.idle.store(true, std::memory_order_relaxed);
  // An idle capability reaches the GC barrier immediately.
  if (gc_pending()) {
    arrive_at_barrier(ci);
    return;
  }
  const bool has_blocked = c.n_blocked.load(std::memory_order_relaxed) > 0;
  charge(ci, cost_.idle_poll, has_blocked ? CapState::Blocked : CapState::Idle);

  // Quiescence check. In virtual time this is exact, not a heuristic: a
  // blocked thread can only be woken by a running thread or an external
  // event, so when no capability is active, no work exists anywhere and no
  // external event is pending, the blocked threads are stuck for good.
  // Walk the wait-for graph to say *why* (cycle vs starvation).
  bool any_active = false;
  for (const CapSim& k : caps_)
    if (k.active != nullptr) any_active = true;
  if (!any_active && !m_.work_anywhere() && !gc_pending()) {
    if (pending_) {
      if (auto next = pending_()) {
        // External events still in flight: fast-forward to them.
        cs.time = std::max(cs.time, *next);
        return;
      }
    }
    deadlocked_ = true;
    result_.diagnosis = m_.diagnose_deadlock();
    if (trace_ != nullptr) trace_->note(ci, cs.time, result_.diagnosis.describe());
  }
}

void SimDriver::run_mutator(std::uint32_t ci, Tso* main_tso) {
  CapSim& cs = caps_[ci];
  Capability& c = m_.cap(ci);
  Tso* t = cs.active;
  const RtsConfig& cfg = m_.config();
  const std::uint64_t start = cs.time;
  std::uint64_t elapsed = 0;

  auto end_run_segment = [&]() {
    if (trace_ != nullptr) trace_->record(ci, start, start + elapsed, CapState::Run);
    cs.time = start + elapsed;
  };

  // Execute at most sim_slice_steps per slice so that heap effects become
  // visible to the other capabilities at fine virtual-time granularity; a
  // context switch still only happens when the full quantum is spent.
  const std::uint32_t budget =
      std::min<std::uint32_t>(cost_.sim_slice_steps, cfg.quantum_steps - cs.quantum_used);
  for (std::uint32_t steps = 0; steps < budget; ++steps) {
    cs.quantum_used++;
    // Improved barrier: interrupted at every safe point (each step).
    if (gc_pending() && cfg.barrier == BarrierPolicy::Improved) {
      end_run_segment();
      charge(ci, cost_.barrier_signal, CapState::Sync);
      arrive_at_barrier(ci);
      return;
    }
    const std::uint64_t debt_before = c.alloc_debt;
    const StepOutcome out = m_.step(c, *t);
    elapsed += cost_.step;
    if (c.alloc_debt > debt_before)
      elapsed += ((c.alloc_debt - debt_before) * cost_.alloc_per_4words) / 4;

    // Allocation check (GHC: every 4kB block): the only safe point at
    // which a Naive-barrier mutator notices a pending GC. Note that lazy
    // black-holing does NOT happen here — in GHC 6.x thunks were marked
    // only at genuine context switches, which is exactly why duplicate
    // evaluation was so visible in the paper's Fig. 5.
    if (c.alloc_debt >= cfg.alloc_check_words) {
      c.alloc_debt = 0;
      if (gc_pending() && cfg.barrier == BarrierPolicy::Naive) {
        end_run_segment();
        arrive_at_barrier(ci);
        return;
      }
    }

    switch (out) {
      case StepOutcome::Ok:
        if (cs.oom_tso != nullptr) {
          cs.oom_tso = nullptr;  // progress: the allocation went through
          cs.oom_streak = 0;
        }
        continue;
      case StepOutcome::NeedGc: {
        // This capability cannot allocate. Escalate on repeated failure of
        // the same thread: 1st → normal GC, 2nd → forced major GC (grows
        // the old generation), 3rd → unwind just this thread.
        if (cs.oom_tso == t) cs.oom_streak++;
        else { cs.oom_tso = t; cs.oom_streak = 1; }
        if (cs.oom_streak == 2) force_major_ = true;
        if (cs.oom_streak >= 3) {
          m_.kill_thread(c, *t, "heap overflow");
          result_.heap_overflows++;
          if (m_.fault() != nullptr) m_.fault()->stats().heap_overflows++;
          if (trace_ != nullptr)
            trace_->note(ci, start + elapsed,
                         "heap overflow: unwound tso " + std::to_string(t->id));
          cs.oom_tso = nullptr;
          cs.oom_streak = 0;
          end_run_segment();
          if (t == main_tso) {
            main_done_ = true;
            return;
          }
          cs.active = nullptr;
          cs.quantum_used = 0;
          charge(ci, cost_.context_switch, CapState::Sync);
          return;
        }
        end_run_segment();
        arrive_at_barrier(ci);
        return;
      }
      case StepOutcome::Blocked:
        m_.blackhole_pending_updates(c, *t);
        cs.active = nullptr;
        cs.quantum_used = 0;
        end_run_segment();
        charge(ci, cost_.context_switch, CapState::Sync);
        return;
      case StepOutcome::Finished:
        if (t == main_tso) {
          end_run_segment();
          main_done_ = true;
          return;
        }
        if (t->is_spark_thread && m_.spark_thread_continue(c, *t)) {
          elapsed += cost_.context_switch;  // cheap spark-to-spark switch
          continue;
        }
        cs.active = nullptr;
        cs.quantum_used = 0;
        end_run_segment();
        charge(ci, cost_.context_switch, CapState::Sync);
        return;
    }
  }

  end_run_segment();
  if (cs.quantum_used < cfg.quantum_steps) return;  // slice boundary only

  // Quantum expired: context switch. The scheduler runs — lazy
  // black-holing happens here (§IV.A.3), and under PushOnPoll this is the
  // only moment surplus work gets offloaded (§IV.A.2).
  m_.blackhole_pending_updates(c, *t);
  t->state = ThreadState::Runnable;
  c.push_thread(t);
  cs.active = nullptr;
  cs.quantum_used = 0;
  charge(ci, cost_.context_switch, CapState::Sync);
  m_.push_work(c);
}

void SimDriver::arrive_at_barrier(std::uint32_t ci) {
  CapSim& cs = caps_[ci];
  cs.arrived = true;
  cs.arrive_time = cs.time;
}

void SimDriver::finish_gc() {
  std::uint64_t gc_start = 0;
  for (const CapSim& cs : caps_) gc_start = std::max(gc_start, cs.arrive_time);
  // Everybody waits (yellow) until the last capability arrives...
  if (trace_ != nullptr)
    for (std::uint32_t i = 0; i < m_.n_caps(); ++i)
      trace_->record(i, caps_[i].arrive_time, gc_start, CapState::Sync);
  // ...then the sequential collector runs while all mutators are stopped.
  const std::uint64_t copied = m_.collect(force_major_);
  force_major_ = false;
  const std::uint64_t pause = cost_.gc_fixed + copied * cost_.gc_per_word;
  result_.gc_count++;
  result_.gc_pause_total += pause;
  // Parallel collections: overlay each GC worker's busy span (edentv-style)
  // so a trace shows how evenly the copy work spread across the team. The
  // *virtual* pause above stays the sequential cost model — words copied is
  // schedule-independent, so determinism is unaffected.
  if (trace_ != nullptr && m_.heap().gc_threads() > 1) {
    for (const GcWorkerSpan& sp : m_.heap().last_gc_spans()) {
      const std::uint32_t lane = std::min(sp.worker, m_.n_caps() - 1);
      trace_->note(lane, gc_start,
                   gc_span_note(sp.worker, sp.words_copied, sp.end_ns - sp.start_ns));
    }
  }
  for (std::uint32_t i = 0; i < m_.n_caps(); ++i) {
    if (trace_ != nullptr) trace_->record(i, gc_start, gc_start + pause, CapState::Gc);
    caps_[i].time = gc_start + pause;
    caps_[i].arrived = false;
  }
}

}  // namespace ph
