#include "heap/heap.hpp"

#include <algorithm>
#include <cstring>
#include <cstdio>
#include <cstdlib>

namespace ph {
namespace {
// Allocation granularity: every object reserves at least one payload word
// so that it can be overwritten by a forwarding pointer during GC (nullary
// constructors would otherwise have no room).
inline std::size_t alloc_words(std::uint32_t payload_words) {
  return 1 + std::max<std::uint32_t>(1, payload_words);
}
inline std::size_t alloc_words(const Obj* o) { return alloc_words(o->size); }

constexpr std::size_t kStaticBlockWords = 64 * 1024;
}  // namespace

Heap::Heap(const HeapConfig& cfg) : cfg_(cfg) {
  if (cfg_.n_nurseries == 0) throw HeapError("heap needs at least one nursery");
  if (cfg_.nursery_words < 64) throw HeapError("nursery too small");
  nursery_slab_words_ = cfg_.nursery_words * cfg_.n_nurseries;
  nursery_base_ = new Word[nursery_slab_words_];
  nurseries_.resize(cfg_.n_nurseries);
  remsets_.resize(cfg_.n_nurseries);
  for (std::uint32_t i = 0; i < cfg_.n_nurseries; ++i) {
    Word* start = nursery_base_ + static_cast<std::size_t>(i) * cfg_.nursery_words;
    nurseries_[i] = Nursery{start, start, start + cfg_.nursery_words, 0};
  }
  old_capacity_ = std::max(cfg_.old_words, nursery_slab_words_ * 2);
  old_base_ = new Word[old_capacity_];
  old_ptr_ = old_base_;
  old_end_ = old_base_ + old_capacity_;
}

Heap::~Heap() {
  delete[] nursery_base_;
  delete[] old_base_;
  for (const StaticBlock& b : static_blocks_) delete[] b.base;
}

Obj* Heap::bump(Word*& ptr, Word* end, ObjKind kind, std::uint16_t tag,
                std::uint32_t payload_words) {
  const std::size_t need = alloc_words(payload_words);
  if (ptr + need > end) return nullptr;
  Obj* o = reinterpret_cast<Obj*>(ptr);
  ptr += need;
  o->kind = kind;
  o->flags = 0;
  o->tag = tag;
  o->size = payload_words;
  return o;
}

Obj* Heap::alloc(std::uint32_t nid, ObjKind kind, std::uint16_t tag,
                 std::uint32_t payload_words) {
  Nursery& n = nurseries_.at(nid);
  // Objects too large for a (fresh) nursery go straight to the old
  // generation ("large object space"); they may hold young pointers, so
  // they enter the remembered set.
  if (alloc_words(payload_words) > cfg_.nursery_words / 2) {
    Obj* o = nullptr;
    {
      std::lock_guard<std::mutex> lock(old_mutex_);
      o = bump(old_ptr_, old_end_, kind, tag, payload_words);
    }
    if (o == nullptr) {
      // Old generation full: ask for a collection (which majors — and
      // grows the semispace — when the old gen is tight) and let the
      // caller retry, exactly like a nursery failure.
      request_gc();
      return nullptr;
    }
    remsets_[nid].push_back(o);
    n.allocated += alloc_words(payload_words);
    return o;
  }
  Obj* o = bump(n.ptr, n.end, kind, tag, payload_words);
  // No shared counter here: words_allocated is derived from the per-nursery
  // single-writer `allocated` fields when stats() is read (was a data race).
  if (o != nullptr) n.allocated += alloc_words(payload_words);
  return o;
}

Obj* Heap::alloc_old(ObjKind kind, std::uint16_t tag, std::uint32_t payload_words) {
  std::lock_guard<std::mutex> lock(old_mutex_);
  Obj* o = bump(old_ptr_, old_end_, kind, tag, payload_words);
  if (o == nullptr)
    throw HeapError("old generation exhausted during large allocation; "
                    "increase HeapConfig::old_words");
  return o;
}

void Heap::remember(std::uint32_t nid, Obj* updated) {
  if (!in_nursery(updated) && !updated->is_static()) remsets_.at(nid).push_back(updated);
}

Obj* Heap::alloc_static(ObjKind kind, std::uint16_t tag, std::uint32_t payload_words) {
  std::lock_guard<std::mutex> lock(static_mutex_);
  const std::size_t need = alloc_words(payload_words);
  if (static_ptr_ == nullptr || static_ptr_ + need > static_end_) {
    const std::size_t block = std::max(kStaticBlockWords, need);
    static_blocks_.push_back(StaticBlock{new Word[block], block});
    static_ptr_ = static_blocks_.back().base;
    static_end_ = static_ptr_ + block;
  }
  Obj* o = bump(static_ptr_, static_end_, kind, tag, payload_words);
  o->flags |= kFlagStatic;
  return o;
}

bool Heap::in_static(const Obj* p) const {
  const Word* w = reinterpret_cast<const Word*>(p);
  for (const StaticBlock& b : static_blocks_)
    if (w >= b.base && w < b.base + b.words) return true;
  return false;
}

void Heap::walk_objects(const ObjVisitor& visit) {
  auto scan = [&](Word* p, const Word* limit, const char* region, std::uint32_t idx) {
    while (p < limit) {
      Obj* o = reinterpret_cast<Obj*>(p);
      visit(o, region, idx, limit);
      p += alloc_words(o);
    }
  };
  scan(old_base_, old_ptr_, "old", 0);
  for (std::uint32_t i = 0; i < nurseries_.size(); ++i)
    scan(nurseries_[i].start, nurseries_[i].ptr, "nursery", i);
}

std::size_t Heap::nursery_used(std::uint32_t nid) const {
  const Nursery& n = nurseries_.at(nid);
  return static_cast<std::size_t>(n.ptr - n.start);
}

void Heap::reset_nurseries() {
  for (Nursery& n : nurseries_) n.ptr = n.start;
}

HeapCensus Heap::census() const {
  HeapCensus c;
  auto scan = [&](const Word* p, const Word* end) {
    while (p < end) {
      const Obj* o = reinterpret_cast<const Obj*>(p);
      c.objects_by_kind[static_cast<std::size_t>(o->kind)]++;
      c.objects++;
      p += alloc_words(o);
    }
  };
  scan(old_base_, old_ptr_);
  for (const Nursery& n : nurseries_) {
    scan(n.start, n.ptr);
    c.nursery_used_words += static_cast<std::size_t>(n.ptr - n.start);
  }
  c.old_used_words = old_used();
  return c;
}

std::string HeapCensus::summary() const {
  static const char* kKindNames[8] = {"Int",       "Con", "Thunk",       "Ind",
                                      "BlackHole", "Pap", "Placeholder", "Fwd"};
  std::string s = std::to_string(objects) + " objects (old " +
                  std::to_string(old_used_words) + "w, nursery " +
                  std::to_string(nursery_used_words) + "w):";
  for (std::size_t k = 0; k < objects_by_kind.size(); ++k) {
    if (objects_by_kind[k] == 0) continue;
    s += " ";
    s += kKindNames[k];
    s += "=";
    s += std::to_string(objects_by_kind[k]);
  }
  return s;
}

// --- collector --------------------------------------------------------------

bool Gc::wants(const Obj* p) const {
  if (p->is_static()) return false;
  if (h_.in_nursery(p)) return true;
  if (!major_) return false;  // old objects move only on a major collection
  // Major: evacuate only from-space residents; an object already in the
  // fresh to-space must not be copied again (slots may be walked twice,
  // e.g. when two roots alias or a remembered object is revisited).
  const Word* w = reinterpret_cast<const Word*>(p);
  return w >= from_lo_ && w < from_hi_;
}

Obj* Gc::copy(Obj* p) {
  assert(p->kind != ObjKind::Fwd);
  const std::uint32_t payload = p->size;
  Obj* to = h_.bump(h_.old_ptr_, h_.old_end_, p->kind, p->tag, payload);
  if (to == nullptr)
    throw HeapError("to-space exhausted during collection; increase HeapConfig::old_words");
  std::memcpy(to->payload(), p->payload(),
              static_cast<std::size_t>(payload) * sizeof(Word));
  words_copied_ += alloc_words(payload);
  p->kind = ObjKind::Fwd;
  p->payload()[0] = reinterpret_cast<Word>(to);
  if (to->ptrs_last() > to->ptrs_first()) scan_queue_.push_back(to);
  return to;
}

void Gc::evacuate(Obj*& slot) {
  Obj* p = slot;
  assert(p != nullptr);
  // Short-circuit indirection chains while evacuating (GHC does the same):
  // the indirection cell itself is garbage once its target is reachable.
  while (p->kind == ObjKind::Ind) p = p->ind_target();
  while (p->kind == ObjKind::Fwd) p = reinterpret_cast<Obj*>(p->payload()[0]);
  if (!wants(p)) {
    slot = p;
    return;
  }
  slot = copy(p);
}

std::uint64_t Heap::collect(const RootWalker& walk_roots, bool force_major) {
  gc_requested_.store(false, std::memory_order_release);

  // Decide generation. A minor GC promotes into the current old space, so
  // there must be room for (worst case) every live nursery word.
  const std::size_t old_used_now = old_used();
  bool major = force_major ||
               old_used_now > static_cast<std::size_t>(
                                  static_cast<double>(old_capacity_) * cfg_.major_threshold) ||
               old_used_now + nursery_slab_words_ + 1024 > old_capacity_;

  Word* from_base = old_base_;
  const Word* from_end = old_end_;
  if (major) {
    // Fresh to-space, sized for everything that could survive.
    std::size_t need = old_used_now + nursery_slab_words_ + 1024;
    std::size_t cap = std::max(old_capacity_, cfg_.old_words);
    while (static_cast<double>(need) >
           static_cast<double>(cap) * cfg_.major_threshold)
      cap = cap * 2;
    old_base_ = new Word[cap];
    old_capacity_ = cap;
    old_ptr_ = old_base_;
    old_end_ = old_base_ + cap;
  }

  Gc gc(*this, major);
  gc.from_lo_ = from_base;
  gc.from_hi_ = from_end;
  walk_roots(gc);

  // Remembered set: old-generation slots that were mutated to point at
  // young data (thunk updates, placeholder fills, large-object fields).
  // Irrelevant on a major GC where everything is traced anyway.
  if (!major) {
    for (auto& rs : remsets_) {
      for (Obj* o : rs) {
        if (o->kind == ObjKind::Fwd) continue;  // unreachable from roots is fine; keep fields sane
        for (std::uint32_t i = o->ptrs_first(); i < o->ptrs_last(); ++i)
          gc.evacuate(o->ptr_payload()[i]);
      }
    }
  }
  for (auto& rs : remsets_) rs.clear();

  while (!gc.scan_queue_.empty()) {
    Obj* o = gc.scan_queue_.back();
    gc.scan_queue_.pop_back();
    for (std::uint32_t i = o->ptrs_first(); i < o->ptrs_last(); ++i)
      gc.evacuate(o->ptr_payload()[i]);
  }

  if (major) {
    delete[] from_base;
    stats_.major_collections++;
    stats_.words_copied_major += gc.words_copied_;
  } else {
    stats_.minor_collections++;
    stats_.words_copied_minor += gc.words_copied_;
  }
  last_live_words_ = gc.words_copied_;
  reset_nurseries();
  return gc.words_copied_;
}

}  // namespace ph
