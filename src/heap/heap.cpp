#include "heap/heap.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <utility>

#include "rts/schedtest.hpp"
#include "rts/wsdeque.hpp"

namespace ph {
namespace {
// Allocation granularity: every object reserves at least one payload word
// so that it can be overwritten by a forwarding pointer during GC (nullary
// constructors would otherwise have no room).
inline std::size_t alloc_words(std::uint32_t payload_words) {
  return 1 + std::max<std::uint32_t>(1, payload_words);
}
inline std::size_t alloc_words(const Obj* o) { return alloc_words(o->size); }

constexpr std::size_t kStaticBlockWords = 64 * 1024;

inline std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point a,
                                std::chrono::steady_clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}
}  // namespace

/// One parallel collection's shared team state: the from-space region
/// list, the root-shard work list, one gray-object deque per worker slot,
/// and the termination-detection counters. Owned by the leader's stack
/// frame in collect_parallel(); helpers hold a reference only between
/// joining and exiting, which the leader's exit barrier brackets.
struct GcShared {
  Heap& h;
  bool major;
  struct Region {
    const Word* lo;
    const Word* hi;
  };
  std::vector<Region> from;  // major: semispace + overflow slabs being vacated

  std::vector<Heap::RootWalker> shards;
  std::atomic<std::size_t> next_shard{0};

  std::uint32_t n_workers = 1;
  std::vector<std::unique_ptr<WsDeque<Obj*>>> deques;
  std::vector<std::unique_ptr<Gc>> workers;
  std::vector<GcWorkerSpan> spans;  // one slot per worker, single writer each
  std::chrono::steady_clock::time_point wall0;

  /// Workers currently in the working phase. A worker only produces gray
  /// work (deque pushes) or consumes shards while registered here, so
  /// busy == 0 combined with work_visible() == false is a stable "all
  /// reachable objects copied and scanned" state.
  std::atomic<std::int32_t> busy{1};
  std::atomic<bool> team_done{false};

  GcShared(Heap& heap, bool maj) : h(heap), major(maj) {}

  bool work_visible() const {
    if (next_shard.load(std::memory_order_acquire) < shards.size()) return true;
    for (const auto& d : deques)
      if (!d->empty()) return true;
    return false;
  }
};

Gc::~Gc() = default;

Heap::Heap(const HeapConfig& cfg) : cfg_(cfg) {
  if (cfg_.n_nurseries == 0) throw HeapError("heap needs at least one nursery");
  if (cfg_.nursery_words < 64) throw HeapError("nursery too small");
  gc_threads_ = std::max<std::uint32_t>(1, cfg_.gc_threads);
  cfg_.gc_block_words = std::max<std::size_t>(16, cfg_.gc_block_words);
  nursery_slab_words_ = cfg_.nursery_words * cfg_.n_nurseries;
  nursery_base_ = new Word[nursery_slab_words_];
  nurseries_.resize(cfg_.n_nurseries);
  remsets_.resize(cfg_.n_nurseries);
  for (std::uint32_t i = 0; i < cfg_.n_nurseries; ++i) {
    Word* start = nursery_base_ + static_cast<std::size_t>(i) * cfg_.nursery_words;
    nurseries_[i] = Nursery{start, start, start + cfg_.nursery_words, 0};
  }
  old_capacity_ = std::max(cfg_.old_words, nursery_slab_words_ * 2);
  old_base_ = new Word[old_capacity_];
  old_ptr_ = old_base_;
  old_end_ = old_base_ + old_capacity_;
  tail_base_ = old_base_;
}

Heap::~Heap() {
  {
    std::lock_guard<std::mutex> lk(gcs_mutex_);
    gc_shutdown_ = true;
  }
  gccv_.notify_all();
  for (std::thread& t : gc_pool_) t.join();
  delete[] nursery_base_;
  delete[] old_base_;
  for (const OverflowSlab& s : old_extra_) delete[] s.base;
  for (const StaticBlock& b : static_blocks_) delete[] b.base;
}

Obj* Heap::bump(Word*& ptr, Word* end, ObjKind kind, std::uint16_t tag,
                std::uint32_t payload_words) {
  const std::size_t need = alloc_words(payload_words);
  if (ptr + need > end) return nullptr;
  Obj* o = reinterpret_cast<Obj*>(ptr);
  ptr += need;
  o->kind = kind;
  o->flags = 0;
  o->tag = tag;
  o->size = payload_words;
  return o;
}

Obj* Heap::alloc(std::uint32_t nid, ObjKind kind, std::uint16_t tag,
                 std::uint32_t payload_words) {
  Nursery& n = nurseries_.at(nid);
  // Objects too large for a (fresh) nursery go straight to the old
  // generation ("large object space"); they may hold young pointers, so
  // they enter the remembered set.
  if (alloc_words(payload_words) > cfg_.nursery_words / 2) {
    Obj* o = nullptr;
    {
      std::lock_guard<std::mutex> lock(old_mutex_);
      o = bump(old_ptr_, old_end_, kind, tag, payload_words);
    }
    if (o == nullptr) {
      // Old generation full: ask for a collection (which majors — and
      // grows the semispace — when the old gen is tight) and let the
      // caller retry, exactly like a nursery failure.
      request_gc();
      return nullptr;
    }
    remsets_[nid].push_back(o);
    n.allocated += alloc_words(payload_words);
    return o;
  }
  Obj* o = bump(n.ptr, n.end, kind, tag, payload_words);
  // No shared counter here: words_allocated is derived from the per-nursery
  // single-writer `allocated` fields when stats() is read (was a data race).
  if (o != nullptr) n.allocated += alloc_words(payload_words);
  return o;
}

Obj* Heap::alloc_old(ObjKind kind, std::uint16_t tag, std::uint32_t payload_words) {
  std::lock_guard<std::mutex> lock(old_mutex_);
  Obj* o = bump(old_ptr_, old_end_, kind, tag, payload_words);
  if (o == nullptr)
    throw HeapError("old generation exhausted during large allocation; "
                    "increase HeapConfig::old_words");
  return o;
}

void Heap::remember(std::uint32_t nid, Obj* updated) {
  if (!in_nursery(updated) && !updated->is_static()) remsets_.at(nid).push_back(updated);
}

Obj* Heap::alloc_static(ObjKind kind, std::uint16_t tag, std::uint32_t payload_words) {
  std::lock_guard<std::mutex> lock(static_mutex_);
  const std::size_t need = alloc_words(payload_words);
  if (static_ptr_ == nullptr || static_ptr_ + need > static_end_) {
    const std::size_t block = std::max(kStaticBlockWords, need);
    static_blocks_.push_back(StaticBlock{new Word[block], block});
    static_ptr_ = static_blocks_.back().base;
    static_end_ = static_ptr_ + block;
  }
  Obj* o = bump(static_ptr_, static_end_, kind, tag, payload_words);
  o->flags |= kFlagStatic;
  return o;
}

bool Heap::in_static(const Obj* p) const {
  const Word* w = reinterpret_cast<const Word*>(p);
  for (const StaticBlock& b : static_blocks_)
    if (w >= b.base && w < b.base + b.words) return true;
  return false;
}

bool Heap::in_live_old(const Obj* p) const {
  const Word* w = reinterpret_cast<const Word*>(p);
  if (w >= tail_base_ && w < old_ptr_) return true;
  // Binary search the address-sorted closed segments for the last one
  // starting at or below w.
  std::size_t lo = 0, hi = old_segments_.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (std::less_equal<const Word*>()(old_segments_[mid].start, w))
      lo = mid + 1;
    else
      hi = mid;
  }
  if (lo == 0) return false;
  const OldSegment& s = old_segments_[lo - 1];
  return w >= s.start && w < s.filled;
}

void Heap::walk_objects(const ObjVisitor& visit) {
  auto scan = [&](Word* p, const Word* limit, const char* region, std::uint32_t idx) {
    while (p < limit) {
      Obj* o = reinterpret_cast<Obj*>(p);
      visit(o, region, idx, limit);
      p += alloc_words(o);
    }
  };
  for (const OldSegment& s : old_segments_) scan(s.start, s.filled, "old", 0);
  scan(tail_base_, old_ptr_, "old", 0);
  for (std::uint32_t i = 0; i < nurseries_.size(); ++i)
    scan(nurseries_[i].start, nurseries_[i].ptr, "nursery", i);
}

std::size_t Heap::nursery_used(std::uint32_t nid) const {
  const Nursery& n = nurseries_.at(nid);
  return static_cast<std::size_t>(n.ptr - n.start);
}

void Heap::reset_nurseries() {
  for (Nursery& n : nurseries_) n.ptr = n.start;
}

HeapCensus Heap::census() const {
  HeapCensus c;
  auto scan = [&](const Word* p, const Word* end) {
    while (p < end) {
      const Obj* o = reinterpret_cast<const Obj*>(p);
      c.objects_by_kind[static_cast<std::size_t>(o->kind)]++;
      c.objects++;
      p += alloc_words(o);
    }
  };
  for (const OldSegment& s : old_segments_) scan(s.start, s.filled);
  scan(tail_base_, old_ptr_);
  for (const Nursery& n : nurseries_) {
    scan(n.start, n.ptr);
    c.nursery_used_words += static_cast<std::size_t>(n.ptr - n.start);
  }
  c.old_used_words = old_used();
  return c;
}

std::string HeapCensus::summary() const {
  static const char* kKindNames[8] = {"Int",       "Con", "Thunk",       "Ind",
                                      "BlackHole", "Pap", "Placeholder", "Fwd"};
  std::string s = std::to_string(objects) + " objects (old " +
                  std::to_string(old_used_words) + "w, nursery " +
                  std::to_string(nursery_used_words) + "w):";
  for (std::size_t k = 0; k < objects_by_kind.size(); ++k) {
    if (objects_by_kind[k] == 0) continue;
    s += " ";
    s += kKindNames[k];
    s += "=";
    s += std::to_string(objects_by_kind[k]);
  }
  return s;
}

// --- sequential collector ---------------------------------------------------
// The gc_threads == 1 path: byte-for-byte the collector this repository
// always had (contiguous to-space bump allocation, one scan queue).

bool Gc::wants(const Obj* p) const {
  if (p->is_static()) return false;
  if (h_.in_nursery(p)) return true;
  if (!major_) return false;  // old objects move only on a major collection
  // Major: evacuate only from-space residents; an object already in the
  // fresh to-space must not be copied again (slots may be walked twice,
  // e.g. when two roots alias or a remembered object is revisited).
  const Word* w = reinterpret_cast<const Word*>(p);
  return w >= from_lo_ && w < from_hi_;
}

Obj* Gc::copy(Obj* p) {
  assert(p->kind != ObjKind::Fwd);
  const std::uint32_t payload = p->size;
  Obj* to = h_.bump(h_.old_ptr_, h_.old_end_, p->kind, p->tag, payload);
  if (to == nullptr)
    throw HeapError("to-space exhausted during collection; increase HeapConfig::old_words");
  std::memcpy(to->payload(), p->payload(),
              static_cast<std::size_t>(payload) * sizeof(Word));
  words_copied_ += alloc_words(payload);
  p->kind = ObjKind::Fwd;
  p->payload()[0] = reinterpret_cast<Word>(to);
  if (to->ptrs_last() > to->ptrs_first()) scan_queue_.push_back(to);
  return to;
}

void Gc::evacuate(Obj*& slot) {
  if (sh_ != nullptr) {
    evacuate_par(slot);
    return;
  }
  Obj* p = slot;
  assert(p != nullptr);
  // Short-circuit indirection chains while evacuating (GHC does the same):
  // the indirection cell itself is garbage once its target is reachable.
  while (p->kind == ObjKind::Ind) p = p->ind_target();
  while (p->kind == ObjKind::Fwd) p = reinterpret_cast<Obj*>(p->payload()[0]);
  if (!wants(p)) {
    slot = p;
    return;
  }
  slot = copy(p);
}

std::uint64_t Heap::collect_seq(const RootWalker& walk_roots, bool force_major) {
  gc_requested_.store(false, std::memory_order_release);
  const auto wall0 = std::chrono::steady_clock::now();

  // Decide generation. A minor GC promotes into the current old space, so
  // there must be room for (worst case) every live nursery word.
  const std::size_t old_used_now = old_used();
  bool major = force_major ||
               old_used_now > static_cast<std::size_t>(
                                  static_cast<double>(old_capacity_) * cfg_.major_threshold) ||
               old_used_now + nursery_slab_words_ + 1024 > old_capacity_;

  Word* from_base = old_base_;
  const Word* from_end = old_end_;
  if (major) {
    // Fresh to-space, sized for everything that could survive.
    std::size_t need = old_used_now + nursery_slab_words_ + 1024;
    std::size_t cap = std::max(old_capacity_, cfg_.old_words);
    while (static_cast<double>(need) >
           static_cast<double>(cap) * cfg_.major_threshold)
      cap = cap * 2;
    old_base_ = new Word[cap];
    old_capacity_ = cap;
    old_ptr_ = old_base_;
    old_end_ = old_base_ + cap;
    tail_base_ = old_base_;
  }

  Gc gc(*this, major);
  gc.from_lo_ = from_base;
  gc.from_hi_ = from_end;
  walk_roots(gc);

  // Remembered set: old-generation slots that were mutated to point at
  // young data (thunk updates, placeholder fills, large-object fields).
  // Irrelevant on a major GC where everything is traced anyway.
  if (!major) {
    for (auto& rs : remsets_) {
      for (Obj* o : rs) {
        if (o->kind == ObjKind::Fwd) continue;  // unreachable from roots is fine; keep fields sane
        for (std::uint32_t i = o->ptrs_first(); i < o->ptrs_last(); ++i)
          gc.evacuate(o->ptr_payload()[i]);
      }
    }
  }
  for (auto& rs : remsets_) rs.clear();

  while (!gc.scan_queue_.empty()) {
    Obj* o = gc.scan_queue_.back();
    gc.scan_queue_.pop_back();
    for (std::uint32_t i = o->ptrs_first(); i < o->ptrs_last(); ++i)
      gc.evacuate(o->ptr_payload()[i]);
  }

  if (major) {
    delete[] from_base;
    stats_.major_collections++;
    stats_.words_copied_major += gc.words_copied_;
  } else {
    stats_.minor_collections++;
    stats_.words_copied_minor += gc.words_copied_;
  }
  stats_.gc_elapsed_ns += elapsed_ns(wall0, std::chrono::steady_clock::now());
  last_live_words_ = gc.words_copied_;
  reset_nurseries();
  return gc.words_copied_;
}

// --- parallel collector -----------------------------------------------------

bool Gc::wants_par(const Obj* p, std::uint8_t flags) const {
  if (flags & kFlagStatic) return false;
  if (h_.in_nursery(p)) return true;
  if (!major_) return false;
  const Word* w = reinterpret_cast<const Word*>(p);
  for (const GcShared::Region& r : sh_->from)
    if (w >= r.lo && w < r.hi) return true;
  return false;
}

Word* Heap::gc_carve(std::size_t words) {
  std::lock_guard<std::mutex> lock(old_mutex_);
  if (old_ptr_ + words <= old_end_) {
    Word* p = old_ptr_;
    old_ptr_ += words;
    return p;
  }
  if (!old_extra_.empty()) {
    OverflowSlab& s = old_extra_.back();
    if (s.ptr + words <= s.base + s.words) {
      Word* p = s.ptr;
      s.ptr += words;
      return p;
    }
  }
  // To-space exhausted mid-collection: grow the old generation with an
  // overflow slab (geometric, so a badly undersized heap converges in a
  // few grabs). The next major collection evacuates and frees these.
  const std::size_t slab = std::max(
      words, std::max(old_capacity_ / 4,
                      cfg_.gc_block_words * static_cast<std::size_t>(gc_threads_) * 8));
  old_extra_.push_back(OverflowSlab{new Word[slab], slab, nullptr});
  OverflowSlab& s = old_extra_.back();
  s.ptr = s.base + words;
  stats_.tospace_overflows++;
  return s.base;
}

void Gc::retire_block() {
  if (blk_start_ != nullptr && blk_ptr_ > blk_start_)
    segs_.emplace_back(blk_start_, blk_ptr_);
  blk_start_ = blk_ptr_ = blk_end_ = nullptr;
}

Obj* Gc::to_alloc(ObjKind kind, std::uint16_t tag, std::uint32_t payload_words) {
  const std::size_t need = alloc_words(payload_words);
  const std::size_t block = h_.cfg_.gc_block_words;
  Word* p;
  if (need > block / 2) {
    // Large object: a dedicated exact-fit block, closed immediately.
    p = h_.gc_carve(need);
    segs_.emplace_back(p, p + need);
  } else {
    if (blk_ptr_ == nullptr || blk_ptr_ + need > blk_end_) {
      retire_block();  // the hole left behind is < block/2 words
      blk_start_ = blk_ptr_ = h_.gc_carve(block);
      blk_end_ = blk_start_ + block;
    }
    p = blk_ptr_;
    blk_ptr_ += need;
  }
  Obj* o = reinterpret_cast<Obj*>(p);
  o->kind = kind;
  o->flags = 0;
  o->tag = tag;
  o->size = payload_words;
  return o;
}

void Gc::evacuate_par(Obj*& slot) {
  // `slot` may itself be a heap word: a remembered-set shard evacuates an
  // old Ind's target field while another worker short-circuits through the
  // same Ind. All slot stores are therefore release (publishing the copy
  // to whoever reads the pointer through the aliased word) and the Ind
  // target read below is the matching acquire.
  std::atomic_ref<Obj*> aslot(slot);
  Obj* p = aslot.load(std::memory_order_relaxed);
  assert(p != nullptr);
  for (;;) {
    // The header word is the arbitration point: another worker may CAS it
    // busy or release-publish a Fwd at any moment. Acquire pairs with that
    // publish so the forwarding word (and the copied payload) is visible.
    const Word h = header_word(p).load(std::memory_order_acquire);
    const Obj hd = unpack_header(h);
    if (hd.kind == ObjKind::Ind) {
      // Indirections are short-circuited, never claimed — but their target
      // word is not stable: a root shard may be rewriting it concurrently
      // (see above).
      p = std::atomic_ref<Obj*>(p->ptr_payload()[0]).load(std::memory_order_acquire);
      continue;
    }
    if (hd.flags & kFlagGcBusy) {
      // Another worker owns the copy; its Fwd header is imminent. The
      // yield point lets the schedule explorer serialise this window
      // (and park the loser while the winner publishes).
      sched_hook::point(SchedPoint::GcEvacSpin, reinterpret_cast<std::uint64_t>(p));
      continue;
    }
    if (hd.kind == ObjKind::Fwd) {
      aslot.store(reinterpret_cast<Obj*>(p->payload()[0]), std::memory_order_release);
      return;
    }
    if (!wants_par(p, hd.flags)) {
      aslot.store(p, std::memory_order_release);
      return;
    }
    // Claim the object by CASing its header to the busy form. Exactly one
    // racing worker succeeds; the rest loop back, observe busy, then the
    // published Fwd — so all agree on a single copy.
    sched_hook::point(SchedPoint::GcEvacClaim, reinterpret_cast<std::uint64_t>(p));
    Word expected = h;
    if (!header_word(p).compare_exchange_strong(
            expected, pack_header(hd.kind, hd.flags | kFlagGcBusy, hd.tag, hd.size),
            std::memory_order_acq_rel, std::memory_order_acquire))
      continue;
    Obj* to = to_alloc(hd.kind, hd.tag, hd.size);
    std::memcpy(to->payload(), p->payload(),
                static_cast<std::size_t>(hd.size) * sizeof(Word));
    p->payload()[0] = reinterpret_cast<Word>(to);
    sched_hook::point(SchedPoint::GcEvacPublish, reinterpret_cast<std::uint64_t>(p));
    // Release: whoever acquires the Fwd header also sees the forwarding
    // word and the payload copy written above.
    header_word(p).store(pack_header(ObjKind::Fwd, 0, hd.tag, hd.size),
                         std::memory_order_release);
    words_copied_ += alloc_words(hd.size);
    if (to->ptrs_last() > to->ptrs_first()) deque_->push(to);
    aslot.store(to, std::memory_order_release);
    return;
  }
}

void Gc::scavenge(Obj* o) {
  for (std::uint32_t i = o->ptrs_first(); i < o->ptrs_last(); ++i)
    evacuate_par(o->ptr_payload()[i]);
}

void Heap::gc_worker_loop(GcShared& sh, std::uint32_t worker) {
  Gc& g = *sh.workers[worker];
  WsDeque<Obj*>& dq = *sh.deques[worker];
  const auto t0 = std::chrono::steady_clock::now();
  bool done = false;
  while (!done) {
    bool did = false;
    // 1. Drain own gray objects (LIFO: depth-first, cache-warm).
    while (auto o = dq.pop()) {
      g.scavenge(*o);
      did = true;
    }
    // 2. Claim one root shard from the shared cursor.
    for (;;) {
      std::size_t i = sh.next_shard.load(std::memory_order_acquire);
      if (i >= sh.shards.size()) break;
      if (sh.next_shard.compare_exchange_weak(i, i + 1, std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
        sh.shards[i](g);
        did = true;
        break;
      }
    }
    // 3. Steal gray work from another worker's deque.
    if (!did) {
      for (std::uint32_t k = 1; k < sh.n_workers; ++k) {
        const std::uint32_t v = (worker + k) % sh.n_workers;
        if (auto o = sh.deques[v]->steal()) {
          g.scavenge(*o);
          did = true;
          break;
        }
      }
    }
    if (did) continue;
    // Termination detection: deregister from the busy count, then either
    // see new work appear (some still-busy worker produced it — re-register
    // and go back) or see every worker idle with nothing visible: since
    // work is only produced by busy workers, that state is stable — done.
    sh.busy.fetch_sub(1, std::memory_order_acq_rel);
    for (;;) {
      sched_hook::point(SchedPoint::GcIdle, worker);
      if (sh.team_done.load(std::memory_order_acquire)) {
        done = true;
        break;
      }
      if (sh.work_visible()) {
        sh.busy.fetch_add(1, std::memory_order_acq_rel);
        break;
      }
      if (sh.busy.load(std::memory_order_acquire) == 0) {
        sh.team_done.store(true, std::memory_order_release);
        done = true;
        break;
      }
      std::this_thread::yield();
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  GcWorkerSpan& sp = sh.spans[worker];
  sp.worker = worker;
  sp.start_ns = elapsed_ns(sh.wall0, t0);
  sp.end_ns = std::max<std::uint64_t>(sp.start_ns + 1, elapsed_ns(sh.wall0, t1));
  sp.words_copied = g.words_copied_;
}

bool Heap::join_session(std::unique_lock<std::mutex>& lk) {
  GcShared& sh = *session_;
  if (gc_joined_ >= gc_threads_ || sh.team_done.load(std::memory_order_acquire))
    return false;
  const std::uint32_t wid = gc_joined_++;
  // Register busy before releasing the lock: the termination barrier must
  // never observe zero busy workers while this joiner is on its way in.
  sh.busy.fetch_add(1, std::memory_order_acq_rel);
  gccv_.notify_all();  // the leader may be waiting out the assembly window
  lk.unlock();
  gc_worker_loop(sh, wid);
  lk.lock();
  gc_exited_.fetch_add(1, std::memory_order_release);
  return true;
}

bool Heap::try_help_collect() {
  if (gc_threads_ <= 1) return false;
  std::unique_lock<std::mutex> lk(gcs_mutex_);
  if (!gc_open_ || session_ == nullptr) return false;
  return join_session(lk);
}

void Heap::set_gc_donation(bool on) {
  std::lock_guard<std::mutex> lk(gcs_mutex_);
  gc_donation_ = on;
}

void Heap::pool_worker() {
  std::unique_lock<std::mutex> lk(gcs_mutex_);
  for (;;) {
    gccv_.wait(lk, [&] {
      return gc_shutdown_ ||
             (gc_open_ && !gc_donation_ && session_ != nullptr &&
              gc_joined_ < gc_threads_ &&
              !session_->team_done.load(std::memory_order_acquire));
    });
    if (gc_shutdown_) return;
    join_session(lk);
  }
}

std::uint64_t Heap::collect_parallel(std::vector<RootWalker> shards, bool force_major) {
  gc_requested_.store(false, std::memory_order_release);
  const auto wall0 = std::chrono::steady_clock::now();

  const std::size_t old_used_now = old_used();
  const bool major =
      force_major ||
      old_used_now > static_cast<std::size_t>(
                         static_cast<double>(old_capacity_) * cfg_.major_threshold) ||
      old_used_now + nursery_slab_words_ + 1024 > old_capacity_;

  GcShared sh(*this, major);
  sh.wall0 = wall0;
  std::vector<Word*> from_free;
  if (major) {
    // Everything currently backing the old generation becomes from-space.
    sh.from.push_back({old_base_, old_end_});
    from_free.push_back(old_base_);
    for (const OverflowSlab& s : old_extra_) {
      sh.from.push_back({s.base, s.base + s.words});
      from_free.push_back(s.base);
    }
    old_extra_.clear();
    old_segments_.clear();
    // Fresh to-space, sized for everything that could survive plus block-
    // allocator headroom (each worker may strand a partial block).
    std::size_t need = old_used_now + nursery_slab_words_ + 1024 +
                       static_cast<std::size_t>(gc_threads_) * cfg_.gc_block_words;
    std::size_t cap = std::max(old_capacity_, cfg_.old_words);
    while (static_cast<double>(need) >
           static_cast<double>(cap) * cfg_.major_threshold)
      cap = cap * 2;
    old_base_ = new Word[cap];
    old_capacity_ = cap;
    old_ptr_ = old_base_;
    old_end_ = old_base_ + cap;
    tail_base_ = old_base_;
  } else {
    // Close the mutator's allocation tail as a live segment; to-space
    // blocks carve above it.
    if (old_ptr_ > tail_base_) old_segments_.push_back({tail_base_, old_ptr_});
    // One shard scans all remembered sets: an old object updated from two
    // capabilities sits in two sets, and two workers scavenging the same
    // object would race on its slots.
    shards.push_back([this](Gc& g) {
      for (auto& rs : remsets_) {
        for (Obj* o : rs) {
          if (o->kind == ObjKind::Fwd) continue;  // keep fields sane either way
          for (std::uint32_t i = o->ptrs_first(); i < o->ptrs_last(); ++i)
            g.evacuate(o->ptr_payload()[i]);
        }
      }
    });
  }

  sh.shards = std::move(shards);
  sh.n_workers = gc_threads_;
  sh.spans.resize(sh.n_workers);
  sh.deques.reserve(sh.n_workers);
  sh.workers.reserve(sh.n_workers);
  for (std::uint32_t w = 0; w < sh.n_workers; ++w) {
    sh.deques.emplace_back(new WsDeque<Obj*>(256));
    sh.workers.emplace_back(new Gc(*this, major, sh, w, *sh.deques[w]));
  }

  // Open the session. The leader takes slot 0; the remaining slots are
  // claimed by pool threads (woken here) or by donated capability threads
  // polling try_help_collect() from the threaded driver's barrier.
  {
    std::lock_guard<std::mutex> lk(gcs_mutex_);
    if (!gc_donation_ && gc_pool_.empty() && gc_threads_ > 1 && !gc_shutdown_)
      for (std::uint32_t i = 1; i < gc_threads_; ++i)
        gc_pool_.emplace_back([this] { pool_worker(); });
    session_ = &sh;
    gc_open_ = true;
    gc_joined_ = 1;
    gc_exited_.store(0, std::memory_order_relaxed);
  }
  gccv_.notify_all();

  // Gang assembly (GHC 6.10 gang-synchronises its gc_threads the same
  // way): give the team a bounded window to wake and claim slots before
  // the leader starts copying. Without it a freshly-notified pool thread
  // needs a timeslice to wake, and on a busy or single-core host the
  // leader would finish a small heap alone every time. Bounded, so a
  // missing helper (donation mode with fewer pollers) costs 2ms, never a
  // hang; a full team releases the leader immediately.
  {
    std::unique_lock<std::mutex> lk(gcs_mutex_);
    gccv_.wait_for(lk, std::chrono::milliseconds(2),
                   [&] { return gc_joined_ >= gc_threads_; });
  }

  std::uint32_t joined = 1;
  auto close_session = [&] {
    std::lock_guard<std::mutex> lk(gcs_mutex_);
    gc_open_ = false;
    session_ = nullptr;
    joined = gc_joined_;
  };
  try {
    gc_worker_loop(sh, 0);
  } catch (...) {
    // Close and wait the team out before propagating, or helpers would
    // reference a dead session.
    close_session();
    sh.team_done.store(true, std::memory_order_release);
    while (gc_exited_.load(std::memory_order_acquire) < joined - 1)
      std::this_thread::yield();
    throw;
  }
  close_session();
  // Helpers may still be taking their last trip through the idle loop;
  // their blocks and counters are merged only once all have exited. Spin
  // through a yield point so a serialised schedule can run them to done.
  while (gc_exited_.load(std::memory_order_acquire) < joined - 1) {
    sched_hook::point(SchedPoint::GcIdle, ~std::uint64_t{0});
    std::this_thread::yield();
  }

  // Merge per-worker results — every field below had a single writer (its
  // worker) until this point, mirroring the words_allocated discipline.
  std::uint64_t copied = 0, max_worker = 0, worker_ns = 0;
  last_spans_.clear();
  for (std::uint32_t w = 0; w < sh.n_workers; ++w) {
    Gc& g = *sh.workers[w];
    g.retire_block();
    for (const auto& s : g.segs_) old_segments_.push_back(OldSegment{s.first, s.second});
    copied += g.words_copied_;
    max_worker = std::max(max_worker, g.words_copied_);
    const GcWorkerSpan& sp = sh.spans[w];
    if (sp.end_ns != 0) {  // this slot actually ran
      last_spans_.push_back(sp);
      worker_ns += sp.end_ns - sp.start_ns;
    }
  }
  std::sort(old_segments_.begin(), old_segments_.end(),
            [](const OldSegment& a, const OldSegment& b) {
              return std::less<const Word*>()(a.start, b.start);
            });
  tail_base_ = old_ptr_;  // mutator large allocations resume above the blocks

  for (auto& rs : remsets_) rs.clear();
  if (major) {
    for (Word* f : from_free) delete[] f;
    stats_.major_collections++;
    stats_.words_copied_major += copied;
  } else {
    stats_.minor_collections++;
    stats_.words_copied_minor += copied;
  }
  stats_.parallel_collections++;
  stats_.gc_elapsed_ns += elapsed_ns(wall0, std::chrono::steady_clock::now());
  stats_.gc_worker_ns += worker_ns;
  stats_.last_gc_workers = joined;
  stats_.last_gc_balance =
      max_worker > 0 ? static_cast<double>(copied) / static_cast<double>(max_worker) : 1.0;
  last_live_words_ = copied;
  reset_nurseries();
  return copied;
}

std::uint64_t Heap::collect(const RootWalker& walk_roots, bool force_major) {
  if (gc_threads_ <= 1) return collect_seq(walk_roots, force_major);
  std::vector<RootWalker> shards;
  shards.push_back(walk_roots);
  return collect_parallel(std::move(shards), force_major);
}

std::uint64_t Heap::collect(std::vector<RootWalker> root_shards, bool force_major) {
  if (gc_threads_ <= 1) {
    return collect_seq(
        [&root_shards](Gc& gc) {
          for (const RootWalker& shard : root_shards) shard(gc);
        },
        force_major);
  }
  return collect_parallel(std::move(root_shards), force_major);
}

}  // namespace ph
