// Heap: per-capability allocation areas ("nurseries") over a shared
// two-generation store, with a sequential stop-the-world copying collector
// — the structure of GHC 6.x's storage manager that the paper's §IV.A.1
// optimisations target.
//
// * Each capability bump-allocates from its own nursery; when any nursery
//   fills, a collection is requested and all capabilities must reach a
//   safe point (the GC barrier, whose promptness is a paper-level policy).
// * Minor GC evacuates live nursery objects into the old generation.
//   The only mutations in the runtime are thunk/placeholder updates, so a
//   remembered set of updated old-generation slots suffices for minor GCs.
// * Major GC copies the whole live graph into a fresh semispace when the
//   old generation passes a fill threshold.
//
// The collector itself is single-threaded (the paper's baseline GHC used a
// sequential STW collector); callers guarantee all mutators are stopped.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "heap/object.hpp"

namespace ph {

struct HeapError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct HeapConfig {
  std::uint32_t n_nurseries = 1;
  /// Allocation-area size per capability, in words. GHC's default 0.5MB
  /// corresponds to 65536 words; the paper's "big allocation area" runs
  /// enlarge this substantially.
  std::size_t nursery_words = 64 * 1024;
  /// Initial old-generation semispace size in words (grows on demand).
  std::size_t old_words = 4 * 1024 * 1024;
  /// Trigger a major GC when old-gen usage exceeds this fraction.
  double major_threshold = 0.8;
};

/// A population count of the heap at one instant — attached to
/// RtsInternalError so a consistency failure reports *what* the heap held,
/// not just that something broke.
struct HeapCensus {
  std::array<std::uint64_t, 8> objects_by_kind{};  // indexed by ObjKind
  std::uint64_t objects = 0;
  std::size_t old_used_words = 0;
  std::size_t nursery_used_words = 0;
  std::string summary() const;
};

struct GcStats {
  std::uint64_t minor_collections = 0;
  std::uint64_t major_collections = 0;
  std::uint64_t words_copied_minor = 0;
  std::uint64_t words_copied_major = 0;
  std::uint64_t words_allocated = 0;  // mutator allocation, cumulative
};

class Heap;

/// Handle passed to the root-walking callback during a collection. Roots
/// call evacuate() on every slot holding a heap pointer.
class Gc {
 public:
  void evacuate(Obj*& slot);

 private:
  friend class Heap;
  explicit Gc(Heap& h, bool major) : h_(h), major_(major) {}
  Obj* copy(Obj* p);
  bool wants(const Obj* p) const;

  Heap& h_;
  bool major_;
  // From-space bounds during a major collection: only objects here (or in
  // the nurseries) are evacuated; anything already in to-space is done.
  const Word* from_lo_ = nullptr;
  const Word* from_hi_ = nullptr;
  std::vector<Obj*> scan_queue_;
  std::uint64_t words_copied_ = 0;
};

class Heap {
 public:
  explicit Heap(const HeapConfig& cfg);
  ~Heap();
  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  // --- mutator interface (one nursery per capability) --------------------
  /// Allocates an object with `payload_words` payload words from nursery
  /// `nid`. Returns nullptr if the space is full (caller must request a
  /// GC and retry). Objects too large for a nursery go to the old gen;
  /// when that is full too, a GC is requested and nullptr returned (a
  /// major collection grows the old generation on demand).
  Obj* alloc(std::uint32_t nid, ObjKind kind, std::uint16_t tag, std::uint32_t payload_words);

  /// Records that `old_obj` (in the old generation) was updated to point
  /// at young data. Must be called after every thunk/placeholder update
  /// whose target may be old. Cheap no-op for nursery objects.
  void remember(std::uint32_t nid, Obj* updated);

  bool gc_requested() const { return gc_requested_.load(std::memory_order_acquire); }
  void request_gc() { gc_requested_.store(true, std::memory_order_release); }

  /// Runs a collection (minor, or major if the old gen is past threshold
  /// or `force_major`). All mutators must be stopped. `walk_roots` is
  /// invoked once and must evacuate every root slot. Returns words copied.
  using RootWalker = std::function<void(Gc&)>;
  std::uint64_t collect(const RootWalker& walk_roots, bool force_major = false);

  // --- statics ------------------------------------------------------------
  /// Allocates an immortal, immovable object (small-int cache, static
  /// function values, shared nullary constructors).
  Obj* alloc_static(ObjKind kind, std::uint16_t tag, std::uint32_t payload_words);

  /// Allocates directly in the old generation (large objects; CAF cells).
  /// The object is movable and collected normally. Callers creating it
  /// from mutator context must register it in a remembered set if it may
  /// point at young data.
  Obj* alloc_old(ObjKind kind, std::uint16_t tag, std::uint32_t payload_words);

  // --- introspection -------------------------------------------------------
  /// Walks the old generation and the nurseries counting objects by kind.
  /// Mutators must be stopped (same precondition as collect()).
  HeapCensus census() const;

  /// words_allocated is summed from the per-nursery counters on demand:
  /// each nursery has a single writer (its owning capability), so the
  /// mutator allocation fast path never touches shared mutable state.
  /// Like census(), call at rest — not while mutators are running.
  const GcStats& stats() const {
    stats_.words_allocated = 0;
    for (const Nursery& n : nurseries_) stats_.words_allocated += n.allocated;
    return stats_;
  }
  std::size_t nursery_words() const { return cfg_.nursery_words; }
  std::size_t nursery_used(std::uint32_t nid) const;
  std::size_t old_used() const { return static_cast<std::size_t>(old_ptr_ - old_base_); }
  std::uint64_t live_words_after_last_gc() const { return last_live_words_; }

  bool in_old(const Obj* p) const {
    auto w = reinterpret_cast<const Word*>(p);
    return w >= old_base_ && w < old_end_;
  }

  bool in_nursery(const Obj* p) const {
    auto w = reinterpret_cast<const Word*>(p);
    return w >= nursery_base_ && w < nursery_base_ + nursery_slab_words_;
  }

  /// True if `p` points into the static arena (immortal objects). Linear
  /// in the number of static blocks — fine for auditing, not for hot paths
  /// (mutators use the kFlagStatic header bit instead).
  bool in_static(const Obj* p) const;

  /// Walks every allocated object in the old generation and the live
  /// nursery prefixes, in address order. `visit` receives the object, a
  /// region label ("old" / "nursery"), the region index (nursery id; 0 for
  /// old), and the region's allocation limit — so an auditor can validate
  /// the header *before* the walk advances by its footprint (a corrupt
  /// size must make `visit` throw, or the walk would stride into garbage).
  /// Mutators must be stopped.
  using ObjVisitor =
      std::function<void(Obj* o, const char* region, std::uint32_t region_index,
                         const Word* limit)>;
  void walk_objects(const ObjVisitor& visit);

 private:
  friend class Gc;
  Obj* bump(Word*& ptr, Word* end, ObjKind kind, std::uint16_t tag, std::uint32_t payload_words);
  void reset_nurseries();

  HeapConfig cfg_;

  // One contiguous slab holds all nurseries => a single range check
  // classifies "young" pointers.
  Word* nursery_base_ = nullptr;
  std::size_t nursery_slab_words_ = 0;
  struct Nursery {
    Word* ptr = nullptr;
    Word* start = nullptr;
    Word* end = nullptr;
    std::uint64_t allocated = 0;  // lifetime words allocated via this nursery
  };
  std::vector<Nursery> nurseries_;

  // Old generation: semispace that is bump-allocated (promotion target and
  // large-object space) and copied wholesale on major GC.
  Word* old_base_ = nullptr;
  Word* old_ptr_ = nullptr;
  Word* old_end_ = nullptr;
  std::size_t old_capacity_ = 0;
  std::mutex old_mutex_;  // large-object allocation from mutators

  std::vector<std::vector<Obj*>> remsets_;  // per nursery/capability

  struct StaticBlock {
    Word* base;
    std::size_t words;
  };
  std::vector<StaticBlock> static_blocks_;
  Word* static_ptr_ = nullptr;
  Word* static_end_ = nullptr;
  std::mutex static_mutex_;

  std::atomic<bool> gc_requested_{false};
  mutable GcStats stats_;  // words_allocated refreshed by stats()
  std::uint64_t last_live_words_ = 0;
};

}  // namespace ph
