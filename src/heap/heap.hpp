// Heap: per-capability allocation areas ("nurseries") over a shared
// two-generation store, with a stop-the-world copying collector — the
// structure of GHC 6.x's storage manager that the paper's §IV.A.1
// optimisations target.
//
// * Each capability bump-allocates from its own nursery; when any nursery
//   fills, a collection is requested and all capabilities must reach a
//   safe point (the GC barrier, whose promptness is a paper-level policy).
// * Minor GC evacuates live nursery objects into the old generation.
//   The only mutations in the runtime are thunk/placeholder updates, so a
//   remembered set of updated old-generation slots suffices for minor GCs.
// * Major GC copies the whole live graph into a fresh semispace when the
//   old generation passes a fill threshold.
//
// The collection itself runs either sequentially (gc_threads == 1: the
// paper's baseline — GHC used a sequential STW collector) or on a team of
// gc_threads workers (the GHC 6.10-era parallel GC shape, DESIGN.md §10):
// block-structured to-space with per-worker allocation blocks refilled
// from a shared carve cursor, forwarding pointers installed by CAS on the
// header word, per-worker Chase–Lev deques of gray objects with work
// stealing, and a busy-counter termination barrier. Workers are either an
// internal pool (simulation drivers, tests) or donated capability threads
// (the threaded driver's rendezvous — see try_help_collect). In both
// modes callers guarantee all mutators are stopped.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "heap/object.hpp"

namespace ph {

template <typename T>
class WsDeque;  // rts/wsdeque.hpp — gray-object scavenge deques

struct HeapError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct HeapConfig {
  std::uint32_t n_nurseries = 1;
  /// Allocation-area size per capability, in words. GHC's default 0.5MB
  /// corresponds to 65536 words; the paper's "big allocation area" runs
  /// enlarge this substantially.
  std::size_t nursery_words = 64 * 1024;
  /// Initial old-generation semispace size in words (grows on demand).
  std::size_t old_words = 4 * 1024 * 1024;
  /// Trigger a major GC when old-gen usage exceeds this fraction.
  double major_threshold = 0.8;
  /// GC worker team size. 1 = the sequential collector, bit-for-bit the
  /// behaviour this repository always had; >1 enables the parallel
  /// block-structured collector. Machine couples this to -N via
  /// RtsConfig::gc_threads (--gc-threads=N).
  std::uint32_t gc_threads = 1;
  /// To-space allocation-block size in words (parallel collector only).
  /// Small values force frequent refills — the block-allocator regression
  /// tests exploit this; the default matches GHC's 4k blocks.
  std::size_t gc_block_words = 4096;
};

/// A population count of the heap at one instant — attached to
/// RtsInternalError so a consistency failure reports *what* the heap held,
/// not just that something broke.
struct HeapCensus {
  std::array<std::uint64_t, 8> objects_by_kind{};  // indexed by ObjKind
  std::uint64_t objects = 0;
  std::size_t old_used_words = 0;
  std::size_t nursery_used_words = 0;
  std::string summary() const;
};

struct GcStats {
  std::uint64_t minor_collections = 0;
  std::uint64_t major_collections = 0;
  std::uint64_t words_copied_minor = 0;
  std::uint64_t words_copied_major = 0;
  std::uint64_t words_allocated = 0;  // mutator allocation, cumulative
  // --- parallel collector ---------------------------------------------------
  std::uint64_t parallel_collections = 0;  // collections run by a worker team
  std::uint64_t tospace_overflows = 0;     // overflow slabs grabbed mid-GC
  std::uint64_t gc_elapsed_ns = 0;         // wall time inside collect(), cumulative
  std::uint64_t gc_worker_ns = 0;          // summed per-worker busy time, cumulative
  /// Copy-work balance of the last collection: total words copied divided
  /// by the words copied by the busiest worker — the parallel speedup the
  /// collection would achieve on one core per worker (on a single-core
  /// host wall time cannot show it; see DESIGN.md §10).
  double last_gc_balance = 1.0;
  std::uint32_t last_gc_workers = 1;  // workers that joined the last team
};

/// One worker's busy interval in the last collection, for trace overlays
/// (edentv-style per-worker GC spans) and the ablation benchmark.
/// Times are nanoseconds relative to the start of the collection.
struct GcWorkerSpan {
  std::uint32_t worker = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t words_copied = 0;
};

class Heap;
struct GcShared;  // heap.cpp: one collection's team state

/// Handle passed to the root-walking callback during a collection. Roots
/// call evacuate() on every slot holding a heap pointer. Each parallel
/// worker owns one Gc; root shards are claimed whole by one worker, so a
/// given slot is only ever evacuated through one Gc (slot *values* may
/// alias across shards — the header CAS arbitrates those).
class Gc {
 public:
  void evacuate(Obj*& slot);
  ~Gc();  // public: team workers are held by unique_ptr in GcShared

 private:
  friend class Heap;
  Gc(Heap& h, bool major) : h_(h), major_(major) {}  // sequential
  Gc(Heap& h, bool major, GcShared& sh, std::uint32_t worker,
     WsDeque<Obj*>& deque)
      : h_(h), major_(major), sh_(&sh), worker_(worker), deque_(&deque) {}

  // Sequential path (gc_threads == 1) — unchanged baseline.
  Obj* copy(Obj* p);
  bool wants(const Obj* p) const;

  // Parallel path.
  void evacuate_par(Obj*& slot);
  bool wants_par(const Obj* p, std::uint8_t flags) const;
  Obj* to_alloc(ObjKind kind, std::uint16_t tag, std::uint32_t payload_words);
  void retire_block();
  void scavenge(Obj* o);

  Heap& h_;
  bool major_;
  // From-space bounds during a sequential major collection: only objects
  // here (or in the nurseries) are evacuated; anything already in to-space
  // is done. (The parallel path keeps its region list in GcShared.)
  const Word* from_lo_ = nullptr;
  const Word* from_hi_ = nullptr;
  std::vector<Obj*> scan_queue_;
  std::uint64_t words_copied_ = 0;  // single writer: this worker; summed by the leader

  GcShared* sh_ = nullptr;
  std::uint32_t worker_ = 0;
  WsDeque<Obj*>* deque_ = nullptr;
  // Private to-space allocation block (refilled from the shared carve
  // cursor under Heap::old_mutex_).
  Word* blk_start_ = nullptr;
  Word* blk_ptr_ = nullptr;
  Word* blk_end_ = nullptr;
  // Closed to-space chunks this worker filled; merged into
  // Heap::old_segments_ by the leader after the team disbands.
  std::vector<std::pair<Word*, Word*>> segs_;
};

class Heap {
 public:
  explicit Heap(const HeapConfig& cfg);
  ~Heap();
  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  // --- mutator interface (one nursery per capability) --------------------
  /// Allocates an object with `payload_words` payload words from nursery
  /// `nid`. Returns nullptr if the space is full (caller must request a
  /// GC and retry). Objects too large for a nursery go to the old gen;
  /// when that is full too, a GC is requested and nullptr returned (a
  /// major collection grows the old generation on demand).
  Obj* alloc(std::uint32_t nid, ObjKind kind, std::uint16_t tag, std::uint32_t payload_words);

  /// Records that `old_obj` (in the old generation) was updated to point
  /// at young data. Must be called after every thunk/placeholder update
  /// whose target may be old. Cheap no-op for nursery objects.
  void remember(std::uint32_t nid, Obj* updated);

  bool gc_requested() const { return gc_requested_.load(std::memory_order_acquire); }
  void request_gc() { gc_requested_.store(true, std::memory_order_release); }

  /// Runs a collection (minor, or major if the old gen is past threshold
  /// or `force_major`). All mutators must be stopped. `walk_roots` is
  /// invoked once and must evacuate every root slot. Returns words copied.
  using RootWalker = std::function<void(Gc&)>;
  std::uint64_t collect(const RootWalker& walk_roots, bool force_major = false);

  /// Sharded flavour: each shard walks a disjoint set of root *slots* and
  /// is claimed whole by one GC worker (Machine partitions per capability:
  /// run queue + TSO stacks stripe, spark slots, CAF cells). With
  /// gc_threads == 1 the shards simply run in order on the sequential
  /// collector.
  std::uint64_t collect(std::vector<RootWalker> root_shards, bool force_major = false);

  /// Joins the currently open parallel collection as an extra worker, if
  /// one is open and a team slot is free; returns after working until the
  /// team's termination barrier. Returns false immediately when there is
  /// nothing to join — callers (the threaded driver's parked capabilities)
  /// poll this while their barrier epoch is unchanged, so a collection
  /// that opens and closes between two polls is simply missed, never
  /// waited on. Never blocks on the session opening.
  bool try_help_collect();

  /// Donation mode: when true the internal worker pool stands down and
  /// the team is recruited exclusively through try_help_collect() — the
  /// threaded driver turns this on so the stopped capabilities themselves
  /// become the GC workers.
  void set_gc_donation(bool on);

  std::uint32_t gc_threads() const { return gc_threads_; }

  /// Per-worker busy spans of the last collection (empty for sequential
  /// heaps). Call at rest, like stats().
  const std::vector<GcWorkerSpan>& last_gc_spans() const { return last_spans_; }

  // --- statics ------------------------------------------------------------
  /// Allocates an immortal, immovable object (small-int cache, static
  /// function values, shared nullary constructors).
  Obj* alloc_static(ObjKind kind, std::uint16_t tag, std::uint32_t payload_words);

  /// Allocates directly in the old generation (large objects; CAF cells).
  /// The object is movable and collected normally. Callers creating it
  /// from mutator context must register it in a remembered set if it may
  /// point at young data.
  Obj* alloc_old(ObjKind kind, std::uint16_t tag, std::uint32_t payload_words);

  // --- introspection -------------------------------------------------------
  /// Walks the old generation and the nurseries counting objects by kind.
  /// Mutators must be stopped (same precondition as collect()).
  HeapCensus census() const;

  /// words_allocated is summed from the per-nursery counters on demand:
  /// each nursery has a single writer (its owning capability), so the
  /// mutator allocation fast path never touches shared mutable state.
  /// The parallel collector keeps the same discipline: words copied live
  /// in per-worker Gc fields and are summed by the leader at the end of
  /// the collection. Like census(), call at rest.
  const GcStats& stats() const {
    stats_.words_allocated = 0;
    for (const Nursery& n : nurseries_) stats_.words_allocated += n.allocated;
    return stats_;
  }
  std::size_t nursery_words() const { return cfg_.nursery_words; }
  std::size_t nursery_used(std::uint32_t nid) const;
  std::size_t old_used() const {
    std::size_t u = static_cast<std::size_t>(old_ptr_ - old_base_);
    for (const OverflowSlab& s : old_extra_) u += static_cast<std::size_t>(s.ptr - s.base);
    return u;
  }
  std::uint64_t live_words_after_last_gc() const { return last_live_words_; }
  /// Overflow slabs currently backing the old generation (to-space growth
  /// that happened mid-GC; freed by the next major collection).
  std::size_t old_overflow_regions() const { return old_extra_.size(); }

  bool in_old(const Obj* p) const {
    auto w = reinterpret_cast<const Word*>(p);
    if (w >= old_base_ && w < old_end_) return true;
    for (const OverflowSlab& s : old_extra_)
      if (w >= s.base && w < s.base + s.words) return true;
    return false;
  }

  /// Tighter than in_old: true only if `p` lies inside a *live* old-gen
  /// chunk — a closed to-space segment or the open allocation tail — not
  /// in a block-allocator hole or beyond the frontier. Binary search over
  /// the sorted segment list; for auditing (-DS), not hot paths.
  bool in_live_old(const Obj* p) const;

  bool in_nursery(const Obj* p) const {
    auto w = reinterpret_cast<const Word*>(p);
    return w >= nursery_base_ && w < nursery_base_ + nursery_slab_words_;
  }

  /// True if `p` points into the static arena (immortal objects). Linear
  /// in the number of static blocks — fine for auditing, not for hot paths
  /// (mutators use the kFlagStatic header bit instead).
  bool in_static(const Obj* p) const;

  /// Walks every allocated object in the old generation and the live
  /// nursery prefixes. The old generation is enumerated as its live
  /// chunks (closed to-space segments in address order, then the open
  /// allocation tail); block-allocator holes are skipped. `visit`
  /// receives the object, a region label ("old" / "nursery"), the region
  /// index (nursery id; 0 for old), and the chunk's allocation limit — so
  /// an auditor can validate the header *before* the walk advances by its
  /// footprint (a corrupt size must make `visit` throw, or the walk would
  /// stride into garbage). Mutators must be stopped.
  using ObjVisitor =
      std::function<void(Obj* o, const char* region, std::uint32_t region_index,
                         const Word* limit)>;
  void walk_objects(const ObjVisitor& visit);

 private:
  friend class Gc;
  friend struct GcShared;
  Obj* bump(Word*& ptr, Word* end, ObjKind kind, std::uint16_t tag, std::uint32_t payload_words);
  void reset_nurseries();

  // Sequential collector (gc_threads == 1): the original baseline path.
  std::uint64_t collect_seq(const RootWalker& walk_roots, bool force_major);
  // Parallel collector.
  std::uint64_t collect_parallel(std::vector<RootWalker> shards, bool force_major);
  /// Carves a to-space chunk of `words` from the shared cursor (main
  /// semispace first, then the newest overflow slab, then a fresh
  /// overflow slab — the mid-GC old-gen growth path). Thread-safe.
  Word* gc_carve(std::size_t words);
  void gc_worker_loop(GcShared& sh, std::uint32_t worker);
  /// Claims a team slot in the open session (gcs_mutex_ held on entry and
  /// exit; released while working). Returns false if no slot was free.
  bool join_session(std::unique_lock<std::mutex>& lk);
  void pool_worker();

  HeapConfig cfg_;

  // One contiguous slab holds all nurseries => a single range check
  // classifies "young" pointers.
  Word* nursery_base_ = nullptr;
  std::size_t nursery_slab_words_ = 0;
  struct Nursery {
    Word* ptr = nullptr;
    Word* start = nullptr;
    Word* end = nullptr;
    std::uint64_t allocated = 0;  // lifetime words allocated via this nursery
  };
  std::vector<Nursery> nurseries_;

  // Old generation: semispace that is bump-allocated (promotion target and
  // large-object space) and copied wholesale on major GC.
  Word* old_base_ = nullptr;
  Word* old_ptr_ = nullptr;
  Word* old_end_ = nullptr;
  std::size_t old_capacity_ = 0;
  std::mutex old_mutex_;  // large-object allocation; GC block refills

  // Block-structured to-space bookkeeping (parallel collector; a
  // sequential heap keeps old_segments_ empty and tail_base_ == old_base_,
  // making every accessor below degenerate to the contiguous layout).
  struct OldSegment {
    Word* start;
    Word* filled;
  };
  std::vector<OldSegment> old_segments_;  // closed live chunks, address-sorted
  Word* tail_base_ = nullptr;             // open tail: [tail_base_, old_ptr_)
  // Overflow slabs: to-space growth when the semispace runs out mid-GC.
  // GC-only — mutators never allocate here; the next major collection
  // evacuates and frees them.
  struct OverflowSlab {
    Word* base;
    std::size_t words;
    Word* ptr;  // carve cursor
  };
  std::vector<OverflowSlab> old_extra_;

  std::vector<std::vector<Obj*>> remsets_;  // per nursery/capability

  struct StaticBlock {
    Word* base;
    std::size_t words;
  };
  std::vector<StaticBlock> static_blocks_;
  Word* static_ptr_ = nullptr;
  Word* static_end_ = nullptr;
  std::mutex static_mutex_;

  std::atomic<bool> gc_requested_{false};
  mutable GcStats stats_;  // words_allocated refreshed by stats()
  std::uint64_t last_live_words_ = 0;

  // --- GC worker-team session ------------------------------------------------
  std::uint32_t gc_threads_ = 1;
  std::mutex gcs_mutex_;  // session open/close, joins, pool lifecycle
  std::condition_variable gccv_;
  GcShared* session_ = nullptr;  // non-null while a team is assembled
  bool gc_open_ = false;         // accepting joiners
  std::uint32_t gc_joined_ = 0;  // team slots claimed (leader = slot 0)
  std::atomic<std::uint32_t> gc_exited_{0};  // helpers done with this session
  bool gc_donation_ = false;
  bool gc_shutdown_ = false;
  std::vector<std::thread> gc_pool_;  // lazily spawned internal workers
  std::vector<GcWorkerSpan> last_spans_;
};

}  // namespace ph
