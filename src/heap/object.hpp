// Heap object model for the graph-reduction engine.
//
// Every value is a heap object with a one-word header followed by a
// payload of machine words. Which payload words are pointers is fully
// determined by the object kind (see scan rules below), which is what the
// copying collector and the Eden graph packer rely on.
//
//   Int         payload[0] = value (raw)
//   Con         tag = constructor tag, payload[0..size) = field ptrs
//   Thunk       payload[0] = ExprId (raw), payload[1..size) = env ptrs
//   Ind         payload[0] = ptr to the value this was updated with
//   BlackHole   payload[0] = blocked-queue index (raw, kNoQueue if none)
//   Pap         payload[0] = GlobalId (raw), payload[1..size) = arg ptrs
//               (a Pap with zero args is a plain function value)
//   Placeholder payload[0] = inport id (raw), payload[1] = queue idx (raw)
//               (Eden: stands for data that will arrive by message)
//   Fwd         payload[0] = new address; exists only during GC
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace ph {

using Word = std::uint64_t;

enum class ObjKind : std::uint8_t {
  Int,
  Con,
  Thunk,
  Ind,
  BlackHole,
  Pap,
  Placeholder,
  Fwd
};

constexpr Word kNoQueue = ~Word{0};

constexpr std::uint8_t kFlagStatic = 1;  // lives in the static arena, never moves
/// Set (via CAS on the whole header word) by the parallel collector while
/// a GC worker owns the copy of this object: the winner of the claim race
/// copies the payload, installs the forwarding pointer, and clears the
/// flag with a release store of the final Fwd header. Never visible
/// outside a collection (the -DS auditor checks).
constexpr std::uint8_t kFlagGcBusy = 2;

struct Obj {
  ObjKind kind;
  std::uint8_t flags;
  std::uint16_t tag;   // constructor tag (Con only)
  std::uint32_t size;  // payload length in words

  Word* payload() { return reinterpret_cast<Word*>(this) + 1; }
  const Word* payload() const { return reinterpret_cast<const Word*>(this) + 1; }

  Obj** ptr_payload() { return reinterpret_cast<Obj**>(payload()); }
  Obj* const* ptr_payload() const { return reinterpret_cast<Obj* const*>(payload()); }

  bool is_static() const { return (flags & kFlagStatic) != 0; }

  /// Total footprint in words including the header.
  std::size_t footprint() const { return 1 + size; }

  // --- typed accessors (asserted) ---------------------------------------
  std::int64_t int_value() const {
    assert(kind == ObjKind::Int);
    return static_cast<std::int64_t>(payload()[0]);
  }
  std::int32_t thunk_expr() const {
    assert(kind == ObjKind::Thunk);
    return static_cast<std::int32_t>(payload()[0]);
  }
  std::uint32_t thunk_env_len() const {
    assert(kind == ObjKind::Thunk);
    return size - 1;
  }
  std::int32_t pap_fun() const {
    assert(kind == ObjKind::Pap);
    return static_cast<std::int32_t>(payload()[0]);
  }
  std::uint32_t pap_nargs() const {
    assert(kind == ObjKind::Pap);
    return size - 1;
  }
  Obj* ind_target() const {
    assert(kind == ObjKind::Ind);
    return ptr_payload()[0];
  }

  /// First payload index holding a pointer, and one-past-last. All payload
  /// words in [first, last) are heap pointers; everything else is raw.
  std::uint32_t ptrs_first() const {
    switch (kind) {
      case ObjKind::Con: return 0;
      case ObjKind::Ind: return 0;
      case ObjKind::Thunk: return 1;
      case ObjKind::Pap: return 1;
      case ObjKind::BlackHole: return 1;
      default: return 0;
    }
  }
  std::uint32_t ptrs_last() const {
    switch (kind) {
      case ObjKind::Con: return size;
      case ObjKind::Ind: return 1;
      case ObjKind::Thunk: return size;
      case ObjKind::Pap: return size;
      // A black hole was a thunk: payload[0] became the wait-queue index
      // but [1, size) still holds the env. Keeping those slots scanned (the
      // evaluating TSO holds the same pointers, so nothing extra is kept
      // alive) lets kill_thread restore the thunk after any number of GCs.
      case ObjKind::BlackHole: return size;
      default: return 0;  // Int, Placeholder, Fwd carry no scannable ptrs
    }
  }

  /// Is this object a value in weak head normal form?
  bool is_whnf() const {
    return kind == ObjKind::Int || kind == ObjKind::Con || kind == ObjKind::Pap;
  }
};

static_assert(sizeof(Obj) == sizeof(Word), "object header must be one word");

// Cross-thread object transitions (thunk update, placeholder fill, black-
// holing) publish the new payload with a release store of the kind byte;
// concurrent readers pair it with an acquire load. The heavier transitions
// are additionally serialised by the Machine's striped object locks when a
// threaded driver is active; these fences cover the lock-free fast paths
// (follow(), WHNF checks).
inline ObjKind kind_acquire(const Obj* p) {
  return std::atomic_ref<const ObjKind>(p->kind).load(std::memory_order_acquire);
}
inline void set_kind_release(Obj* p, ObjKind k) {
  std::atomic_ref<ObjKind>(p->kind).store(k, std::memory_order_release);
}

/// Follows indirection chains to the current representative of a value.
inline Obj* follow(Obj* p) {
  while (kind_acquire(p) == ObjKind::Ind) p = p->ind_target();
  return p;
}

/// WHNF probe safe against a concurrent update(): one acquire kind read
/// (Obj::is_whnf() reads the field plainly and is owner-thread only).
inline bool is_whnf_acquire(const Obj* p) {
  const ObjKind k = kind_acquire(p);
  return k == ObjKind::Int || k == ObjKind::Con || k == ObjKind::Pap;
}

// --- whole-header-word atomics (parallel GC claim protocol) ----------------
// The parallel collector races workers on the header word: a CAS from the
// original header to original|kFlagGcBusy claims the object, and a release
// store of a Fwd header publishes the copy. Packing goes through memcpy so
// the layout matches Obj on any endianness (compiles to a register move).

inline Word pack_header(ObjKind kind, std::uint8_t flags, std::uint16_t tag,
                        std::uint32_t size) {
  Obj o;
  o.kind = kind;
  o.flags = flags;
  o.tag = tag;
  o.size = size;
  Word w;
  std::memcpy(&w, &o, sizeof(Word));
  return w;
}

inline Obj unpack_header(Word w) {
  Obj o;
  std::memcpy(&o, &w, sizeof(Word));
  return o;
}

inline std::atomic_ref<Word> header_word(Obj* p) {
  return std::atomic_ref<Word>(*reinterpret_cast<Word*>(p));
}

}  // namespace ph
