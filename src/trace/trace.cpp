#include "trace/trace.hpp"

#include <algorithm>
#include <array>
#include <iomanip>
#include <sstream>

namespace ph {

const char* cap_state_name(CapState s) {
  switch (s) {
    case CapState::Run: return "run";
    case CapState::Sync: return "sync";
    case CapState::Gc: return "gc";
    case CapState::Blocked: return "blocked";
    case CapState::Idle: return "idle";
  }
  return "?";
}

namespace {
char state_char(CapState s) {
  switch (s) {
    case CapState::Run: return '#';
    case CapState::Sync: return '~';
    case CapState::Gc: return 'G';
    case CapState::Blocked: return 'x';
    case CapState::Idle: return '.';
  }
  return '?';
}
}  // namespace

void TraceLog::record(std::uint32_t row, std::uint64_t start, std::uint64_t end,
                      CapState state) {
  if (end <= start) return;
  auto& r = rows_.at(row);
  if (!r.empty() && r.back().state == state && r.back().end == start) {
    r.back().end = end;
    return;
  }
  r.push_back(Segment{start, end, state});
}

void TraceLog::note(std::uint32_t row, std::uint64_t time, std::string text) {
  notes_.push_back(Note{row, time, std::move(text)});
}

std::string gc_span_note(std::uint32_t worker, std::uint64_t words_copied,
                         std::uint64_t busy_ns) {
  return "gc worker " + std::to_string(worker) + ": " +
         std::to_string(words_copied) + "w copied, busy " +
         std::to_string(busy_ns) + "ns";
}

std::uint64_t TraceLog::end_time() const {
  std::uint64_t t = 0;
  for (const auto& r : rows_)
    if (!r.empty()) t = std::max(t, r.back().end);
  return t;
}

double TraceLog::fraction(std::uint32_t i, CapState state) const {
  const std::uint64_t total = end_time();
  if (total == 0) return 0.0;
  std::uint64_t in_state = 0;
  std::uint64_t covered = 0;
  for (const Segment& s : rows_.at(i)) {
    covered += s.end - s.start;
    if (s.state == state) in_state += s.end - s.start;
  }
  // Time not covered by any segment counts as Idle.
  if (state == CapState::Idle) in_state += total - covered;
  return static_cast<double>(in_state) / static_cast<double>(total);
}

std::string TraceLog::render_ascii(std::uint32_t width) const {
  const std::uint64_t total = end_time();
  std::ostringstream out;
  if (total == 0 || width == 0) return "<empty trace>\n";
  for (std::uint32_t i = 0; i < n_rows(); ++i) {
    out << "cap" << std::setw(2) << i << " |";
    // For each bucket pick the state with the largest overlap.
    std::size_t seg = 0;
    const auto& r = rows_[i];
    for (std::uint32_t b = 0; b < width; ++b) {
      const std::uint64_t b0 = total * b / width;
      const std::uint64_t b1 = std::max(b0 + 1, total * (b + 1) / width);
      std::array<std::uint64_t, 5> weight{};
      while (seg < r.size() && r[seg].end <= b0) seg++;
      for (std::size_t j = seg; j < r.size() && r[j].start < b1; ++j) {
        const std::uint64_t lo = std::max(r[j].start, b0);
        const std::uint64_t hi = std::min(r[j].end, b1);
        if (hi > lo) weight[static_cast<std::size_t>(r[j].state)] += hi - lo;
      }
      std::uint64_t covered = 0;
      for (auto w : weight) covered += w;
      weight[static_cast<std::size_t>(CapState::Idle)] += (b1 - b0) - covered;
      std::size_t best = 0;
      for (std::size_t s = 1; s < weight.size(); ++s)
        if (weight[s] > weight[best]) best = s;
      out << state_char(static_cast<CapState>(best));
    }
    out << "|\n";
  }
  out << "       time 0.." << total << "   #=run ~=sync G=gc x=blocked .=idle\n";
  return out.str();
}

std::string TraceLog::summary() const {
  std::ostringstream out;
  out << std::fixed << std::setprecision(1);
  out << "cap   run%  sync%    gc%  blkd%  idle%\n";
  for (std::uint32_t i = 0; i < n_rows(); ++i) {
    out << std::setw(3) << i;
    for (CapState s : {CapState::Run, CapState::Sync, CapState::Gc, CapState::Blocked,
                       CapState::Idle})
      out << std::setw(7) << 100.0 * fraction(i, s);
    out << "\n";
  }
  return out.str();
}

std::string TraceLog::to_csv() const {
  std::ostringstream out;
  out << "cap,start,end,state\n";
  for (std::uint32_t i = 0; i < n_rows(); ++i)
    for (const Segment& s : rows_[i])
      out << i << "," << s.start << "," << s.end << "," << cap_state_name(s.state) << "\n";
  for (const Note& n : notes_) {
    std::string quoted = n.text;
    std::string::size_type pos = 0;
    while ((pos = quoted.find('"', pos)) != std::string::npos) {
      quoted.insert(pos, 1, '"');
      pos += 2;
    }
    out << "note," << n.row << "," << n.time << ",\"" << quoted << "\"\n";
  }
  return out.str();
}

}  // namespace ph
