// EdenTV-style activity tracing (the paper's §I: "we exploit a custom
// approach to profiling, pending official support for profiling in GHC").
//
// Drivers record, per capability (or per Eden PE), contiguous time
// segments in one of the activity states the paper's timeline diagrams
// use:
//   Run     — executing Haskell code            (green in the paper)
//   Sync    — runnable but waiting for system    (yellow): GC barrier,
//             scheduler work, message handling
//   Gc      — inside the collector pause         (yellow in the paper;
//             kept distinct here for analysis)
//   Blocked — has threads, all blocked           (red)
//   Idle    — nothing to run                     (blue)
//
// The log renders as an ASCII timeline (one row per capability, one
// column per time bucket) and exports CSV for external plotting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ph {

enum class CapState : std::uint8_t { Run, Sync, Gc, Blocked, Idle };

const char* cap_state_name(CapState s);

struct Segment {
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  CapState state = CapState::Idle;
};

/// A point annotation on a row's timeline: fault events (message drops,
/// retransmits, PE crashes and restarts), heap overflows, deadlock
/// verdicts. Exported with the CSV so recovery activity is visible in the
/// same artefact as the activity profile.
struct Note {
  std::uint32_t row = 0;
  std::uint64_t time = 0;
  std::string text;
};

/// Formats a parallel-GC worker's busy span as Note text ("gc worker 2:
/// 1234w copied, busy 56789ns"). Drivers attach one per team worker after
/// a parallel collection so copy-work balance shows up in the same trace
/// artefact as the activity profile (see GcWorkerSpan in heap/heap.hpp).
std::string gc_span_note(std::uint32_t worker, std::uint64_t words_copied,
                         std::uint64_t busy_ns);

class TraceLog {
 public:
  explicit TraceLog(std::uint32_t n_rows) : rows_(n_rows) {}

  /// Appends [start, end) in `state` to row `row`. Adjacent segments in
  /// the same state are merged; zero-length segments are dropped.
  void record(std::uint32_t row, std::uint64_t start, std::uint64_t end, CapState state);

  /// Attaches a point annotation to row `row` at `time`.
  void note(std::uint32_t row, std::uint64_t time, std::string text);
  const std::vector<Note>& notes() const { return notes_; }

  std::uint32_t n_rows() const { return static_cast<std::uint32_t>(rows_.size()); }
  const std::vector<Segment>& row(std::uint32_t i) const { return rows_.at(i); }
  std::uint64_t end_time() const;

  /// Fraction of [0, end_time()) row `i` spent in `state`.
  double fraction(std::uint32_t i, CapState state) const;

  /// One row per capability, `width` buckets wide; each bucket shows the
  /// state that dominated it: '#'=Run '~'=Sync 'G'=Gc 'x'=Blocked '.'=Idle.
  std::string render_ascii(std::uint32_t width = 100) const;

  /// Per-row utilisation summary table.
  std::string summary() const;

  /// "row,start,end,state" lines for external tooling (EdenTV-like),
  /// followed by one `note,row,time,"text"` line per annotation.
  std::string to_csv() const;

 private:
  std::vector<std::vector<Segment>> rows_;
  std::vector<Note> notes_;
};

}  // namespace ph
