#include "core/program.hpp"

#include <algorithm>
#include <sstream>

namespace ph {

const char* prim_op_name(PrimOp op) {
  switch (op) {
    case PrimOp::Add: return "add#";
    case PrimOp::Sub: return "sub#";
    case PrimOp::Mul: return "mul#";
    case PrimOp::Div: return "div#";
    case PrimOp::Mod: return "mod#";
    case PrimOp::Neg: return "neg#";
    case PrimOp::Min: return "min#";
    case PrimOp::Max: return "max#";
    case PrimOp::Eq: return "eq#";
    case PrimOp::Ne: return "ne#";
    case PrimOp::Lt: return "lt#";
    case PrimOp::Le: return "le#";
    case PrimOp::Gt: return "gt#";
    case PrimOp::Ge: return "ge#";
    case PrimOp::Error: return "error#";
  }
  return "?prim?";
}

int prim_op_arity(PrimOp op) {
  switch (op) {
    case PrimOp::Neg:
    case PrimOp::Error:
      return 1;
    default:
      return 2;
  }
}

ExprId Program::add_expr(Expr e) {
  if (validated_) throw ProgramError("Program already validated; cannot add expressions");
  exprs_.push_back(std::move(e));
  return static_cast<ExprId>(exprs_.size() - 1);
}

GlobalId Program::declare(std::string name, std::int32_t arity) {
  if (validated_) throw ProgramError("Program already validated; cannot declare globals");
  if (by_name_.count(name) != 0) throw ProgramError("duplicate supercombinator: " + name);
  Global g;
  g.name = name;
  g.arity = arity;
  globals_.push_back(std::move(g));
  GlobalId id = static_cast<GlobalId>(globals_.size() - 1);
  by_name_.emplace(std::move(name), id);
  return id;
}

void Program::define(GlobalId id, ExprId body) {
  Global& g = globals_.at(static_cast<std::size_t>(id));
  if (g.body != kNoExpr) throw ProgramError("supercombinator redefined: " + g.name);
  g.body = body;
}

GlobalId Program::find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) throw ProgramError("unknown supercombinator: " + name);
  return it->second;
}

std::int32_t Program::check_expr(ExprId id, std::int32_t depth, const Global& g) {
  if (id < 0 || static_cast<std::size_t>(id) >= exprs_.size())
    throw ProgramError("dangling ExprId in " + g.name);
  const Expr& e = exprs_[static_cast<std::size_t>(id)];
  std::int32_t max_env = depth;
  auto visit = [&](ExprId kid, std::int32_t d) {
    max_env = std::max(max_env, check_expr(kid, d, g));
  };
  switch (e.tag) {
    case ExprTag::Var:
      if (e.a < 0 || e.a >= depth)
        throw ProgramError("unbound variable (level " + std::to_string(e.a) + ") in " + g.name);
      break;
    case ExprTag::Global:
      if (e.a < 0 || static_cast<std::size_t>(e.a) >= globals_.size())
        throw ProgramError("dangling GlobalId in " + g.name);
      break;
    case ExprTag::Lit:
      break;
    case ExprTag::App:
      if (e.kids.size() < 2) throw ProgramError("App with no arguments in " + g.name);
      for (ExprId k : e.kids) visit(k, depth);
      break;
    case ExprTag::Let: {
      if (e.kids.size() < 2) throw ProgramError("Let with no body in " + g.name);
      const auto n = static_cast<std::int32_t>(e.kids.size()) - 1;
      // letrec scoping: every right-hand side and the body see all binders.
      for (std::int32_t i = 0; i <= n; ++i) visit(e.kids[static_cast<std::size_t>(i)], depth + n);
      break;
    }
    case ExprTag::Case: {
      if (e.kids.size() != 1) throw ProgramError("Case needs exactly one scrutinee in " + g.name);
      visit(e.kids[0], depth);
      if (e.alts.empty() && e.dflt == kNoExpr)
        throw ProgramError("Case with no alternatives in " + g.name);
      for (const Alt& alt : e.alts) {
        if (alt.arity < 0) throw ProgramError("negative alt arity in " + g.name);
        visit(alt.body, depth + alt.arity);
      }
      if (e.dflt != kNoExpr) visit(e.dflt, depth + (e.a != 0 ? 1 : 0));
      break;
    }
    case ExprTag::Con:
      if (e.a < 0) throw ProgramError("negative constructor tag in " + g.name);
      for (ExprId k : e.kids) visit(k, depth);
      break;
    case ExprTag::Prim: {
      const auto op = static_cast<PrimOp>(e.a);
      if (static_cast<std::size_t>(prim_op_arity(op)) != e.kids.size())
        throw ProgramError(std::string("bad arity for ") + prim_op_name(op) + " in " + g.name);
      for (ExprId k : e.kids) visit(k, depth);
      break;
    }
    case ExprTag::Par:
    case ExprTag::Seq:
      if (e.kids.size() != 2) throw ProgramError("Par/Seq need two operands in " + g.name);
      visit(e.kids[0], depth);
      visit(e.kids[1], depth);
      break;
  }
  return max_env;
}

void Program::validate() {
  for (Global& g : globals_) {
    if (g.body == kNoExpr) throw ProgramError("undefined supercombinator: " + g.name);
    g.max_env = check_expr(g.body, g.arity, g);
  }
  validated_ = true;
}

namespace {
void render(const Program& p, ExprId id, std::ostringstream& out, int indent) {
  const Expr& e = p.expr(id);
  auto kid = [&](ExprId k) { render(p, k, out, indent); };
  switch (e.tag) {
    case ExprTag::Var: out << "v" << e.a; break;
    case ExprTag::Global: out << p.global(e.a).name; break;
    case ExprTag::Lit: out << e.lit; break;
    case ExprTag::App:
      out << "(";
      for (std::size_t i = 0; i < e.kids.size(); ++i) {
        if (i != 0) out << " ";
        kid(e.kids[i]);
      }
      out << ")";
      break;
    case ExprTag::Let: {
      const std::size_t n = e.kids.size() - 1;
      out << "(let {";
      for (std::size_t i = 0; i < n; ++i) {
        if (i != 0) out << "; ";
        out << "b" << i << " = ";
        kid(e.kids[i]);
      }
      out << "} in ";
      kid(e.kids[n]);
      out << ")";
      break;
    }
    case ExprTag::Case:
      out << "(case ";
      kid(e.kids[0]);
      out << " of {";
      for (std::size_t i = 0; i < e.alts.size(); ++i) {
        if (i != 0) out << "; ";
        out << "<" << e.alts[i].tag << "/" << e.alts[i].arity << "> -> ";
        kid(e.alts[i].body);
      }
      if (e.dflt != kNoExpr) {
        if (!e.alts.empty()) out << "; ";
        out << "_ -> ";
        kid(e.dflt);
      }
      out << "})";
      break;
    case ExprTag::Con:
      out << "(Con" << e.a;
      for (ExprId k : e.kids) {
        out << " ";
        kid(k);
      }
      out << ")";
      break;
    case ExprTag::Prim:
      out << "(" << prim_op_name(static_cast<PrimOp>(e.a));
      for (ExprId k : e.kids) {
        out << " ";
        kid(k);
      }
      out << ")";
      break;
    case ExprTag::Par:
      out << "(par ";
      kid(e.kids[0]);
      out << " ";
      kid(e.kids[1]);
      out << ")";
      break;
    case ExprTag::Seq:
      out << "(seq ";
      kid(e.kids[0]);
      out << " ";
      kid(e.kids[1]);
      out << ")";
      break;
  }
}
}  // namespace

std::string Program::show_expr(ExprId id) const {
  std::ostringstream out;
  render(*this, id, out, 0);
  return out.str();
}

std::string Program::show_global(GlobalId id) const {
  const Global& g = global(id);
  std::ostringstream out;
  out << g.name << "/" << g.arity << " = ";
  if (g.body == kNoExpr)
    out << "<undefined>";
  else
    render(*this, g.body, out, 0);
  return out.str();
}

}  // namespace ph
