// A small monotone dataflow framework over the supercombinator call
// graph (DESIGN.md §12).
//
// Analyses assign every global a *summary* drawn from a join-semilattice
// and iterate a monotone transfer function to a fixpoint with a worklist:
// when a global's summary changes, its neighbours (callers for
// callee-to-caller analyses like strictness, callees for forward ones)
// are re-queued. Intraprocedurally the transfer functions are structural
// walks over the expression table; interprocedural facts enter at App
// nodes through the summary table.
//
// All analyses require a validated Program: validation guarantees the
// expression table is acyclic and in-bounds, which is what makes the
// structural walks terminate. (The *linter* is the tool for unvalidated
// programs — see core/lint.)
#pragma once

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <vector>

#include "core/program.hpp"

namespace ph {

/// Static reference graph between supercombinators: g -> h whenever g's
/// body mentions Global h anywhere (applied or passed as a value — a
/// function value can always be applied later, so value references are
/// edges too).
class CallGraph {
 public:
  explicit CallGraph(const Program& p);

  const std::vector<GlobalId>& callees(GlobalId g) const {
    return callees_.at(static_cast<std::size_t>(g));
  }
  const std::vector<GlobalId>& callers(GlobalId g) const {
    return callers_.at(static_cast<std::size_t>(g));
  }
  std::size_t size() const { return callees_.size(); }

  /// Globals reachable from `roots` (roots included).
  std::vector<bool> reachable_from(const std::vector<GlobalId>& roots) const;

 private:
  std::vector<std::vector<GlobalId>> callees_;
  std::vector<std::vector<GlobalId>> callers_;
};

/// Which neighbours to re-queue when a summary changes.
enum class FlowDirection : std::uint8_t {
  Callers,  // summaries flow callee -> caller (strictness, effects)
  Callees   // summaries flow caller -> callee (contexts, shapes)
};

/// Runs `transfer(g, table)` to a fixpoint over the call graph.
/// `transfer` must be monotone in the table (w.r.t. the analysis order)
/// and return the new summary for g; Summary needs operator==. Returns
/// the number of transfer evaluations (for telemetry/tests).
template <typename Summary, typename Transfer>
int solve_fixpoint(const CallGraph& cg, FlowDirection dir,
                   std::vector<Summary>& table, Transfer&& transfer) {
  const std::size_t n = cg.size();
  if (table.size() != n)
    throw std::invalid_argument("solve_fixpoint: summary table size mismatch");
  std::deque<GlobalId> work;
  std::vector<char> queued(n, 1);
  for (std::size_t g = 0; g < n; ++g) work.push_back(static_cast<GlobalId>(g));
  int evals = 0;
  while (!work.empty()) {
    const GlobalId g = work.front();
    work.pop_front();
    queued[static_cast<std::size_t>(g)] = 0;
    ++evals;
    Summary next = transfer(g, table);
    if (next == table[static_cast<std::size_t>(g)]) continue;
    table[static_cast<std::size_t>(g)] = std::move(next);
    const auto& deps = dir == FlowDirection::Callers ? cg.callers(g) : cg.callees(g);
    for (GlobalId d : deps)
      if (!queued[static_cast<std::size_t>(d)]) {
        queued[static_cast<std::size_t>(d)] = 1;
        work.push_back(d);
      }
  }
  return evals;
}

}  // namespace ph
