// Eden packability analysis (DESIGN.md §12.5).
//
// Eden ships *graph structure* between PEs: when a thunk is packed into a
// channel message its free variables are serialised with it and the
// receiver rebuilds the closure remotely. Two properties make a shipped
// expression hazardous:
//
//  * may_error — evaluating it can call error# (prelude head/tail on an
//    empty list, user partiality). Locally the error surfaces on the
//    demanding thread; shipped to a remote PE it surfaces on a machine
//    with no handler for the producing context, killing the PE instead
//    of the caller (rule P1).
//
//  * may_spark — evaluating it executes `par`. Sparks created on a
//    remote single-capability PE can never be converted (nobody steals),
//    so every one is pure pool churn (rule P2).
//
// Both facts are computed as a least fixpoint of a union join over the
// call graph: a global may error/spark if its body syntactically does,
// or if any callee reachable from its body does. This is deliberately
// flow-insensitive — a may-fact, not a must-fact — so defects are
// reported as *warnings*: the prelude's own head/tail legitimately
// carry error# for their partial branches.
#pragma once

#include <string>
#include <vector>

#include "core/analysis/dataflow.hpp"
#include "core/program.hpp"

namespace ph {

struct PackFact {
  bool may_error = false;  // body (transitively) contains PrimOp::Error
  bool may_spark = false;  // body (transitively) contains Par
  friend bool operator==(const PackFact&, const PackFact&) = default;
};

struct PackabilityResult {
  std::vector<PackFact> globals;  // indexed by GlobalId
  int transfer_evals = 0;

  const PackFact& of(GlobalId g) const {
    return globals.at(static_cast<std::size_t>(g));
  }
};

/// Requires a validated program.
PackabilityResult analyze_packability(const Program& p, const CallGraph& cg);

struct PackDefect {
  std::string rule;    // "P1" (partiality shipped) or "P2" (remote spark)
  GlobalId sink = -1;  // the Eden sink whose argument graph misbehaves
  GlobalId via = -1;   // the offending global reachable from the sink
  std::string message;
};

/// Check every global reachable from `sinks` (the globals Eden drivers
/// ship to remote PEs — parmap workers, channel producers) against the
/// packability facts. Returns warnings, never errors.
std::vector<PackDefect> check_pack_sinks(const Program& p,
                                         const CallGraph& cg,
                                         const PackabilityResult& pack,
                                         const std::vector<GlobalId>& sinks);

}  // namespace ph
