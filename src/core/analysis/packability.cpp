#include "core/analysis/packability.hpp"

namespace ph {
namespace {

/// Syntactic (intra-procedural) facts of one body.
PackFact local_facts(const Program& p, ExprId root) {
  PackFact f;
  std::vector<char> seen(p.expr_count(), 0);
  std::vector<ExprId> work{root};
  while (!work.empty()) {
    const ExprId id = work.back();
    work.pop_back();
    if (seen[static_cast<std::size_t>(id)]) continue;
    seen[static_cast<std::size_t>(id)] = 1;
    const Expr& e = p.expr(id);
    if (e.tag == ExprTag::Par) f.may_spark = true;
    if (e.tag == ExprTag::Prim && static_cast<PrimOp>(e.a) == PrimOp::Error)
      f.may_error = true;
    for (ExprId k : e.kids) work.push_back(k);
    for (const Alt& a : e.alts) work.push_back(a.body);
    if (e.dflt != kNoExpr) work.push_back(e.dflt);
  }
  return f;
}

}  // namespace

PackabilityResult analyze_packability(const Program& p, const CallGraph& cg) {
  if (!p.validated())
    throw std::invalid_argument("analyze_packability requires a validated program");
  PackabilityResult res;
  res.globals.resize(p.global_count());
  std::vector<PackFact> local(p.global_count());
  for (std::size_t g = 0; g < p.global_count(); ++g) {
    const Global& gl = p.global(static_cast<GlobalId>(g));
    if (gl.body != kNoExpr) local[g] = local_facts(p, gl.body);
  }
  // Least fixpoint of a union join: facts flow callee -> caller, so a
  // change to g re-enqueues g's callers.
  res.transfer_evals = solve_fixpoint<PackFact>(
      cg, FlowDirection::Callers, res.globals,
      [&](GlobalId g, const std::vector<PackFact>& table) -> PackFact {
        PackFact f = local[static_cast<std::size_t>(g)];
        for (GlobalId h : cg.callees(g)) {
          const PackFact& hf = table[static_cast<std::size_t>(h)];
          f.may_error = f.may_error || hf.may_error;
          f.may_spark = f.may_spark || hf.may_spark;
        }
        return f;
      });
  return res;
}

std::vector<PackDefect> check_pack_sinks(const Program& p,
                                         const CallGraph& cg,
                                         const PackabilityResult& pack,
                                         const std::vector<GlobalId>& sinks) {
  std::vector<PackDefect> out;
  for (GlobalId s : sinks) {
    if (s < 0 || static_cast<std::size_t>(s) >= p.global_count()) continue;
    const std::vector<bool> reach = cg.reachable_from({s});
    GlobalId err_via = -1, spark_via = -1;
    for (std::size_t g = 0; g < p.global_count(); ++g) {
      if (!reach[g]) continue;
      const PackFact& f = pack.globals[g];
      if (f.may_error && err_via < 0) err_via = static_cast<GlobalId>(g);
      if (f.may_spark && spark_via < 0) spark_via = static_cast<GlobalId>(g);
    }
    if (err_via >= 0)
      out.push_back({"P1", s, err_via,
                     "graph shipped through Eden sink '" + p.global(s).name +
                         "' may reach error# via '" + p.global(err_via).name +
                         "': a remote PE has no handler for the caller's context"});
    if (spark_via >= 0)
      out.push_back({"P2", s, spark_via,
                     "graph shipped through Eden sink '" + p.global(s).name +
                         "' may spark via '" + p.global(spark_via).name +
                         "': sparks on a single-capability PE can never convert"});
  }
  return out;
}

}  // namespace ph
