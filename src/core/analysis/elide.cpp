#include "core/analysis/elide.hpp"

#include <stdexcept>
#include <unordered_map>

namespace ph {

Program elide_sparks(const Program& p, const SparkUseResult& su,
                     ElisionStats* stats) {
  if (!p.validated())
    throw std::invalid_argument("elide_sparks requires a validated program");
  if (su.expr_count != p.expr_count())
    throw std::invalid_argument(
        "elide_sparks: spark-usefulness results were computed for a different "
        "program (expression table size mismatch) — rerun the analysis");

  ElisionStats st;
  st.sites = su.sites.size();

  // Verdict per Par node. A site may appear once per enclosing global; a
  // shared node elides only if every occurrence agrees (shared nodes only
  // arise for closed subtrees, where the verdict is context-free anyway).
  std::unordered_map<ExprId, SparkVerdict> verdict;
  for (const SparkSite& s : su.sites) {
    auto [it, fresh] = verdict.emplace(s.par_expr, s.verdict);
    if (!fresh && it->second != s.verdict) it->second = SparkVerdict::Useful;
  }

  const std::size_t n = p.expr_count();

  // AlreadyWhnf Par nodes are bypassed: references to them point at their
  // continuation instead. Chase chains of bypassed nodes to a final
  // target (bounded; a cycle would mean a malformed table, which
  // validate() rules out).
  std::vector<ExprId> target(n);
  for (std::size_t i = 0; i < n; ++i) {
    target[i] = static_cast<ExprId>(i);
    const auto it = verdict.find(static_cast<ExprId>(i));
    if (it != verdict.end() && it->second == SparkVerdict::AlreadyWhnf)
      target[i] = p.expr(static_cast<ExprId>(i)).kids[1];
  }
  const auto resolve = [&](ExprId id) {
    ExprId t = id;
    for (std::size_t fuel = 0; fuel <= n; ++fuel) {
      if (target[static_cast<std::size_t>(t)] == t) return t;
      t = target[static_cast<std::size_t>(t)];
    }
    return id;  // unreachable for validated programs
  };

  Program out;
  for (std::size_t i = 0; i < n; ++i) {
    Expr e = p.expr(static_cast<ExprId>(i));
    const auto it = verdict.find(static_cast<ExprId>(i));
    if (it != verdict.end()) {
      if (it->second == SparkVerdict::ImmediatelyDemanded) {
        e.tag = ExprTag::Seq;  // same kids, forced instead of sparked
        ++st.to_seq;
      } else if (it->second == SparkVerdict::AlreadyWhnf) {
        ++st.dropped;  // node stays in the table but nothing refers to it
      }
    }
    for (ExprId& k : e.kids) k = resolve(k);
    for (Alt& a : e.alts) a.body = resolve(a.body);
    if (e.dflt != kNoExpr) e.dflt = resolve(e.dflt);
    out.add_expr(std::move(e));
  }
  for (std::size_t g = 0; g < p.global_count(); ++g) {
    const Global& gl = p.global(static_cast<GlobalId>(g));
    const GlobalId id = out.declare(gl.name, gl.arity);
    if (gl.body != kNoExpr) out.define(id, resolve(gl.body));
  }
  out.validate();
  if (stats) *stats = st;
  return out;
}

Program elide_useless_sparks(const Program& p, ElisionStats* stats) {
  const CallGraph cg(p);
  const DemandResult demand = analyze_demand(p, cg);
  const SparkUseResult su = analyze_spark_usefulness(p, demand);
  return elide_sparks(p, su, stats);
}

}  // namespace ph
