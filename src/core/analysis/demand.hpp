// Interprocedural demand/strictness analysis (DESIGN.md §12.3).
//
// For every supercombinator g two bitmasks over its parameters:
//
//  * strict — parameter i is *surely forced* whenever a saturated call's
//    result is forced (Mycroft-style strictness: the static counterpart
//    of eager black-holing — a strict argument's thunk will be entered
//    exactly once by the demanding thread, so speculation on it can only
//    race that thread).
//
//  * head — parameter i is the *first thing the body forces*: the call
//    demands it before doing any interleavable work of its own. This is
//    the mask spark-usefulness needs: `par x (f x)` with x head-demanded
//    by f leaves the spark no window to be converted usefully.
//
// The lattice per global is a pair of subset lattices ordered by
// inclusion; the fixpoint is *greatest* (start from all-parameters,
// shrink), with intersection joins at Case branches, so recursive calls
// start optimistic and settle downward — the standard gfp formulation
// for strictness on a complete lattice of finite height (<= 64 bits x 2
// per global, so termination is immediate).
//
// Only the first 64 environment levels are tracked; deeper levels are
// conservatively treated as lazy (no shipped program nests that far).
#pragma once

#include <cstdint>
#include <vector>

#include "core/analysis/dataflow.hpp"
#include "core/program.hpp"

namespace ph {

struct DemandInfo {
  std::uint64_t strict = 0;  // bit i: param i forced whenever the result is
  std::uint64_t head = 0;    // bit i: param i is the body's first force
  friend bool operator==(const DemandInfo&, const DemandInfo&) = default;
};

struct DemandResult {
  std::vector<DemandInfo> globals;  // indexed by GlobalId
  int transfer_evals = 0;

  const DemandInfo& of(GlobalId g) const {
    return globals.at(static_cast<std::size_t>(g));
  }
};

/// Requires a validated program.
DemandResult analyze_demand(const Program& p, const CallGraph& cg);

/// Strict-demand set of an arbitrary expression at scope `depth` under a
/// finished analysis: a bitmask of absolute de Bruijn levels (< 64) the
/// expression surely forces when its value is forced.
std::uint64_t strict_demand_set(const Program& p, const DemandResult& d, ExprId e,
                                std::int32_t depth);

/// Head-demand set: levels the expression forces *first*, before any
/// other interleavable work. Consumed by spark-usefulness.
std::uint64_t head_demand_set(const Program& p, const DemandResult& d, ExprId e,
                              std::int32_t depth);

}  // namespace ph
