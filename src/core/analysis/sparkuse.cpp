#include "core/analysis/sparkuse.hpp"

namespace ph {

const char* spark_verdict_name(SparkVerdict v) {
  switch (v) {
    case SparkVerdict::Useful: return "useful";
    case SparkVerdict::AlreadyWhnf: return "already-whnf";
    case SparkVerdict::ImmediatelyDemanded: return "immediately-demanded";
  }
  return "?";
}

namespace {

std::uint64_t bit(std::int64_t lvl) {
  return (lvl >= 0 && lvl < 64) ? (1ull << lvl) : 0;
}

class SparkWalker {
 public:
  SparkWalker(const Program& p, const DemandResult& demand,
              std::vector<SparkSite>& out)
      : p_(p), demand_(demand), out_(out) {}

  /// `whnf` carries the levels the enclosing context has provably forced
  /// (case-default binders, seq'd variables, case-scrutinee variables,
  /// let binders bound to atoms in WHNF).
  void walk(GlobalId g, ExprId id, std::int32_t depth, std::uint64_t whnf) {
    gid_ = g;
    const Expr& e = p_.expr(id);
    switch (e.tag) {
      case ExprTag::Var:
      case ExprTag::Lit:
      case ExprTag::Global:
        return;
      case ExprTag::App:
      case ExprTag::Con:
      case ExprTag::Prim:
        for (ExprId k : e.kids) walk(g, k, depth, whnf);
        return;
      case ExprTag::Let: {
        const auto n = static_cast<std::int32_t>(e.kids.size()) - 1;
        // Binders bound to atoms already in WHNF stay WHNF. Eval only
        // binds *outer-scope* atoms directly (a Var naming another letrec
        // binder becomes a thunk), so whnf facts never flow binder-to-
        // binder here.
        std::uint64_t w = whnf;
        for (std::int32_t i = 0; i < n; ++i)
          if (binds_whnf(e.kids[static_cast<std::size_t>(i)], whnf, depth))
            w |= bit(depth + i);
        for (std::size_t i = 0; i < e.kids.size(); ++i)
          walk(g, e.kids[i], depth + n, w);
        return;
      }
      case ExprTag::Case: {
        walk(g, e.kids[0], depth, whnf);
        std::uint64_t after = whnf;
        const Expr& scrut = p_.expr(e.kids[0]);
        if (scrut.tag == ExprTag::Var) after |= bit(scrut.a);
        for (const Alt& a : e.alts) walk(g, a.body, depth + a.arity, after);
        if (e.dflt != kNoExpr) {
          std::uint64_t dw = after;
          if (e.a != 0) dw |= bit(depth);  // default binder holds the WHNF
          walk(g, e.dflt, depth + (e.a != 0 ? 1 : 0), dw);
        }
        return;
      }
      case ExprTag::Seq: {
        walk(g, e.kids[0], depth, whnf);
        std::uint64_t after = whnf;
        const Expr& forced = p_.expr(e.kids[0]);
        if (forced.tag == ExprTag::Var) after |= bit(forced.a);
        walk(g, e.kids[1], depth, after);
        return;
      }
      case ExprTag::Par: {
        classify(id, e, depth, whnf);
        walk(g, e.kids[0], depth, whnf);
        walk(g, e.kids[1], depth, whnf);
        return;
      }
    }
  }

 private:
  /// Would a let binder with this right-hand side be bound to a WHNF
  /// object? Mirrors eval's atom() rule, whose env_limit is the *outer*
  /// scope depth: only outer variables bind directly.
  bool binds_whnf(ExprId rhs, std::uint64_t whnf, std::int32_t outer_depth) const {
    const Expr& e = p_.expr(rhs);
    switch (e.tag) {
      case ExprTag::Lit:
        return true;
      case ExprTag::Global:
        return p_.global(e.a).arity > 0;  // arity 0 binds the CAF thunk
      case ExprTag::Con:
        return e.kids.empty();
      case ExprTag::Var:
        return e.a < outer_depth && (whnf & bit(e.a)) != 0;
      default:
        return false;
    }
  }

  void classify(ExprId id, const Expr& e, std::int32_t depth, std::uint64_t whnf) {
    SparkSite site;
    site.global = gid_;
    site.par_expr = id;
    const Expr& op = p_.expr(e.kids[0]);
    switch (op.tag) {
      case ExprTag::Lit:
        site.verdict = SparkVerdict::AlreadyWhnf;
        site.reason = "sparked operand is a literal";
        break;
      case ExprTag::Global:
        if (p_.global(op.a).arity > 0) {
          site.verdict = SparkVerdict::AlreadyWhnf;
          site.reason = "sparked operand is a function value";
        }
        break;
      case ExprTag::Con:
        if (op.kids.empty()) {
          site.verdict = SparkVerdict::AlreadyWhnf;
          site.reason = "sparked operand is a nullary constructor";
        }
        break;
      case ExprTag::Var: {
        if (whnf & bit(op.a)) {
          site.verdict = SparkVerdict::AlreadyWhnf;
          site.reason = "sparked variable v" + std::to_string(op.a) +
                        " is already forced by the enclosing context";
        } else if (head_demand_set(p_, demand_, e.kids[1], depth) & bit(op.a)) {
          site.verdict = SparkVerdict::ImmediatelyDemanded;
          site.reason = "continuation forces sparked variable v" +
                        std::to_string(op.a) + " as its first action";
        }
        break;
      }
      default:
        break;  // fresh thunk: Useful
    }
    out_.push_back(std::move(site));
  }

  const Program& p_;
  const DemandResult& demand_;
  std::vector<SparkSite>& out_;
  GlobalId gid_ = -1;
};

}  // namespace

SparkUseResult analyze_spark_usefulness(const Program& p, const DemandResult& demand) {
  if (!p.validated())
    throw std::invalid_argument("analyze_spark_usefulness requires a validated program");
  SparkUseResult res;
  res.expr_count = p.expr_count();
  SparkWalker w(p, demand, res.sites);
  for (std::size_t g = 0; g < p.global_count(); ++g) {
    const Global& gl = p.global(static_cast<GlobalId>(g));
    if (gl.body == kNoExpr) continue;
    w.walk(static_cast<GlobalId>(g), gl.body, gl.arity, 0);
  }
  return res;
}

}  // namespace ph
