// Lint-driven spark elision (DESIGN.md §12.6).
//
// Consumes the spark-usefulness verdicts and rewrites provably-useless
// `par` sites:
//
//  * ImmediatelyDemanded — `par x b` where b head-demands x becomes
//    `seq x b`: the parent was going to force x first anyway, so forcing
//    it directly preserves the evaluation order while removing the spark
//    (and the fizzle it was destined for).
//
//  * AlreadyWhnf — `par e b` where e is statically WHNF becomes plain
//    `b`: the runtime would count the spark as a dud and drop it, so the
//    node is pure overhead.
//
// Both rewrites are semantics-preserving in the by-need sense: the value
// of `par e b` *is* the value of b, and removing speculation can only
// make the program more defined (a speculative spark may evaluate an
// expression the demanded result never needs). Spark counters can only
// decrease — the property the lint test-suite pins.
//
// Programs are immutable once validated, so elision produces a *fresh*
// Program with identical GlobalIds and an expression table of the same
// size (dropped Par nodes stay in the table, unreferenced, so ExprIds
// remain stable for diagnostics that quote them).
#pragma once

#include <cstddef>

#include "core/analysis/sparkuse.hpp"
#include "core/program.hpp"

namespace ph {

struct ElisionStats {
  std::size_t sites = 0;    // Par sites inspected
  std::size_t to_seq = 0;   // ImmediatelyDemanded: Par rewritten to Seq
  std::size_t dropped = 0;  // AlreadyWhnf: Par node bypassed entirely
};

/// Rewrite `p` according to `su` (which must have been computed for this
/// very program; a table-size mismatch throws std::invalid_argument —
/// the second layer of the "--spark-elide requires analysis results"
/// guard). Returns a validated program.
Program elide_sparks(const Program& p, const SparkUseResult& su,
                     ElisionStats* stats = nullptr);

/// Convenience: call graph + demand + spark-usefulness + elision in one
/// step. Requires a validated program.
Program elide_useless_sparks(const Program& p, ElisionStats* stats = nullptr);

}  // namespace ph
