#include "core/analysis/demand.hpp"

#include <algorithm>

namespace ph {
namespace {

std::uint64_t bit(std::int64_t lvl) {
  return (lvl >= 0 && lvl < 64) ? (1ull << lvl) : 0;
}

std::uint64_t mask_below(std::int32_t depth) {
  if (depth <= 0) return 0;
  if (depth >= 64) return ~0ull;
  return (1ull << depth) - 1;
}

/// Evaluating this expression to WHNF forces nothing interesting first:
/// literals and function values are immediate, constructor applications
/// only allocate (their fields stay lazy).
bool trivially_cheap(const Expr& e) {
  return e.tag == ExprTag::Lit || e.tag == ExprTag::Global || e.tag == ExprTag::Con;
}

class DemandEval {
 public:
  DemandEval(const Program& p, const std::vector<DemandInfo>& table)
      : p_(p), table_(table) {}

  /// Levels surely forced when `id`'s value is forced to WHNF.
  std::uint64_t strict_set(ExprId id, std::int32_t depth) const {
    const Expr& e = p_.expr(id);
    switch (e.tag) {
      case ExprTag::Var:
        return bit(e.a);
      case ExprTag::Lit:
      case ExprTag::Global:
      case ExprTag::Con:
        return 0;
      case ExprTag::App: {
        std::uint64_t s = strict_set(e.kids[0], depth);
        const Expr& f = p_.expr(e.kids[0]);
        if (f.tag == ExprTag::Global) {
          const Global& g = p_.global(f.a);
          const auto nargs = static_cast<std::int32_t>(e.kids.size()) - 1;
          if (g.arity > 0 && nargs >= g.arity) {
            const std::uint64_t callee = table_[static_cast<std::size_t>(f.a)].strict;
            for (std::int32_t i = 0; i < std::min<std::int32_t>(g.arity, 64); ++i)
              if (callee & bit(i))
                s |= strict_set(e.kids[static_cast<std::size_t>(i) + 1], depth);
          }
        }
        return s;
      }
      case ExprTag::Let: {
        const auto n = static_cast<std::int32_t>(e.kids.size()) - 1;
        std::uint64_t s = strict_set(e.kids[static_cast<std::size_t>(n)], depth + n);
        // Demand on a binder pulls in its right-hand side's demand; chase
        // binder-to-binder chains to a (bounded) local fixpoint.
        for (int round = 0; round < 64; ++round) {
          std::uint64_t extra = 0;
          for (std::int32_t i = 0; i < n; ++i)
            if (s & bit(depth + i))
              extra |= strict_set(e.kids[static_cast<std::size_t>(i)], depth + n);
          if ((s | extra) == s) break;
          s |= extra;
        }
        return s & mask_below(depth);
      }
      case ExprTag::Case: {
        std::uint64_t s = strict_set(e.kids[0], depth);
        std::uint64_t branches = ~0ull;
        bool any = false;
        for (const Alt& a : e.alts) {
          branches &= strict_set(a.body, depth + a.arity) & mask_below(depth);
          any = true;
        }
        if (e.dflt != kNoExpr) {
          branches &=
              strict_set(e.dflt, depth + (e.a != 0 ? 1 : 0)) & mask_below(depth);
          any = true;
        }
        return any ? (s | branches) : s;
      }
      case ExprTag::Prim: {
        std::uint64_t s = 0;
        for (ExprId k : e.kids) s |= strict_set(k, depth);
        return s;
      }
      case ExprTag::Seq:
        return strict_set(e.kids[0], depth) | strict_set(e.kids[1], depth);
      case ExprTag::Par:
        // The sparked operand is *speculative*: never surely forced.
        return strict_set(e.kids[1], depth);
    }
    return 0;
  }

  /// Levels forced as the body's *first* action — before any work a
  /// sparked sibling could overlap with.
  std::uint64_t head_set(ExprId id, std::int32_t depth) const {
    const Expr& e = p_.expr(id);
    switch (e.tag) {
      case ExprTag::Var:
        return bit(e.a);
      case ExprTag::Lit:
      case ExprTag::Global:
      case ExprTag::Con:
        return 0;
      case ExprTag::App: {
        const Expr& f = p_.expr(e.kids[0]);
        if (f.tag == ExprTag::Global) {
          const Global& g = p_.global(f.a);
          const auto nargs = static_cast<std::int32_t>(e.kids.size()) - 1;
          if (g.arity > 0 && nargs >= g.arity) {
            // Entering g is immediate (argument thunks only allocate);
            // g's head-demanded params become head demand on var args.
            const std::uint64_t callee = table_[static_cast<std::size_t>(f.a)].head;
            std::uint64_t h = 0;
            for (std::int32_t i = 0; i < std::min<std::int32_t>(g.arity, 64); ++i)
              if (callee & bit(i)) {
                const Expr& arg = p_.expr(e.kids[static_cast<std::size_t>(i) + 1]);
                if (arg.tag == ExprTag::Var) h |= bit(arg.a);
              }
            return h;
          }
          return 0;  // builds a PAP: no forcing at all
        }
        return head_set(e.kids[0], depth);
      }
      case ExprTag::Let: {
        const auto n = static_cast<std::int32_t>(e.kids.size()) - 1;
        std::uint64_t h = head_set(e.kids[static_cast<std::size_t>(n)], depth + n);
        // Head demand on a binder is head demand on its right-hand side
        // (the binder's thunk is entered at once).
        for (int round = 0; round < 64; ++round) {
          std::uint64_t extra = 0;
          for (std::int32_t i = 0; i < n; ++i)
            if (h & bit(depth + i))
              extra |= head_set(e.kids[static_cast<std::size_t>(i)], depth + n);
          if ((h | extra) == h) break;
          h |= extra;
        }
        return h & mask_below(depth);
      }
      case ExprTag::Case:
        return head_set(e.kids[0], depth);
      case ExprTag::Prim: {
        std::uint64_t h = head_set(e.kids[0], depth);
        if (e.kids.size() == 2 && trivially_cheap(p_.expr(e.kids[0])))
          h |= head_set(e.kids[1], depth);
        return h;
      }
      case ExprTag::Seq: {
        std::uint64_t h = head_set(e.kids[0], depth);
        if (trivially_cheap(p_.expr(e.kids[0]))) h |= head_set(e.kids[1], depth);
        return h;
      }
      case ExprTag::Par:
        // Sparking is instantaneous; the continuation's first force is
        // still the thread's first force.
        return head_set(e.kids[1], depth);
    }
    return 0;
  }

 private:
  const Program& p_;
  const std::vector<DemandInfo>& table_;
};

}  // namespace

DemandResult analyze_demand(const Program& p, const CallGraph& cg) {
  if (!p.validated())
    throw std::invalid_argument("analyze_demand requires a validated program");
  DemandResult res;
  res.globals.resize(p.global_count());
  // Greatest fixpoint: start all-strict / all-head and shrink.
  for (std::size_t g = 0; g < p.global_count(); ++g) {
    const std::uint64_t full =
        mask_below(std::min<std::int32_t>(p.global(static_cast<GlobalId>(g)).arity, 64));
    res.globals[g] = {full, full};
  }
  res.transfer_evals = solve_fixpoint<DemandInfo>(
      cg, FlowDirection::Callers, res.globals,
      [&](GlobalId g, const std::vector<DemandInfo>& table) -> DemandInfo {
        const Global& gl = p.global(g);
        if (gl.body == kNoExpr || gl.arity == 0) return {0, 0};
        DemandEval ev(p, table);
        const std::uint64_t params = mask_below(std::min<std::int32_t>(gl.arity, 64));
        return {ev.strict_set(gl.body, gl.arity) & params,
                ev.head_set(gl.body, gl.arity) & params};
      });
  return res;
}

std::uint64_t strict_demand_set(const Program& p, const DemandResult& d, ExprId e,
                                std::int32_t depth) {
  return DemandEval(p, d.globals).strict_set(e, depth);
}

std::uint64_t head_demand_set(const Program& p, const DemandResult& d, ExprId e,
                              std::int32_t depth) {
  return DemandEval(p, d.globals).head_set(e, depth);
}

}  // namespace ph
