#include "core/analysis/dataflow.hpp"

#include <algorithm>

namespace ph {

namespace {

void collect_refs(const Program& p, ExprId id, std::vector<char>& seen,
                  std::vector<GlobalId>& out) {
  if (id < 0 || static_cast<std::size_t>(id) >= p.expr_count()) return;
  if (seen[static_cast<std::size_t>(id)]) return;
  seen[static_cast<std::size_t>(id)] = 1;
  const Expr& e = p.expr(id);
  if (e.tag == ExprTag::Global && e.a >= 0 &&
      static_cast<std::size_t>(e.a) < p.global_count())
    out.push_back(e.a);
  for (ExprId k : e.kids) collect_refs(p, k, seen, out);
  for (const Alt& a : e.alts) collect_refs(p, a.body, seen, out);
  if (e.dflt != kNoExpr) collect_refs(p, e.dflt, seen, out);
}

}  // namespace

CallGraph::CallGraph(const Program& p) {
  if (!p.validated())
    throw std::invalid_argument("CallGraph requires a validated program");
  const std::size_t n = p.global_count();
  callees_.resize(n);
  callers_.resize(n);
  for (std::size_t g = 0; g < n; ++g) {
    const Global& gl = p.global(static_cast<GlobalId>(g));
    if (gl.body == kNoExpr) continue;
    std::vector<char> seen(p.expr_count(), 0);
    std::vector<GlobalId> refs;
    collect_refs(p, gl.body, seen, refs);
    std::sort(refs.begin(), refs.end());
    refs.erase(std::unique(refs.begin(), refs.end()), refs.end());
    callees_[g] = std::move(refs);
    for (GlobalId h : callees_[g]) callers_[static_cast<std::size_t>(h)].push_back(
        static_cast<GlobalId>(g));
  }
}

std::vector<bool> CallGraph::reachable_from(const std::vector<GlobalId>& roots) const {
  std::vector<bool> seen(size(), false);
  std::vector<GlobalId> work;
  for (GlobalId r : roots)
    if (r >= 0 && static_cast<std::size_t>(r) < size() && !seen[static_cast<std::size_t>(r)]) {
      seen[static_cast<std::size_t>(r)] = true;
      work.push_back(r);
    }
  while (!work.empty()) {
    const GlobalId g = work.back();
    work.pop_back();
    for (GlobalId h : callees(g))
      if (!seen[static_cast<std::size_t>(h)]) {
        seen[static_cast<std::size_t>(h)] = true;
        work.push_back(h);
      }
  }
  return seen;
}

}  // namespace ph
