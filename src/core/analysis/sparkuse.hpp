// Spark-usefulness analysis (DESIGN.md §12.4): classifies every `Par`
// site in the program.
//
//  * AlreadyWhnf — the sparked operand is statically in WHNF (a literal,
//    a function value, a nullary constructor, or a variable the
//    surrounding context has already forced). Capability::spark counts
//    such sparks as `dud` at runtime; statically they are pure overhead.
//
//  * ImmediatelyDemanded — the sparked operand is a variable the
//    continuation head-demands: the parent forces the very thunk it just
//    sparked before doing any other work, so the spark either fizzles
//    (popped after the parent finished it) or is stolen mid-evaluation
//    and blocks on the parent's black hole. The classic
//    `par x (x + y)` par-placement mistake the paper's sumEuler
//    discussion dissects.
//
//  * Useful — everything else: the analysis cannot prove the spark
//    redundant, so the elision pass must leave it alone.
//
// Only Var operands can be ImmediatelyDemanded: a non-variable operand
// builds a *fresh* thunk, which the continuation cannot share and hence
// cannot fizzle by forcing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/analysis/demand.hpp"
#include "core/program.hpp"

namespace ph {

enum class SparkVerdict : std::uint8_t { Useful, AlreadyWhnf, ImmediatelyDemanded };

const char* spark_verdict_name(SparkVerdict v);

struct SparkSite {
  GlobalId global = -1;
  ExprId par_expr = kNoExpr;
  SparkVerdict verdict = SparkVerdict::Useful;
  std::string reason;
};

struct SparkUseResult {
  std::vector<SparkSite> sites;  // every Par in the program, body order
  std::size_t expr_count = 0;    // guards elide_sparks against table mismatch

  std::size_t useless() const {
    std::size_t n = 0;
    for (const SparkSite& s : sites)
      if (s.verdict != SparkVerdict::Useful) ++n;
    return n;
  }
};

/// Requires a validated program and its demand analysis.
SparkUseResult analyze_spark_usefulness(const Program& p, const DemandResult& demand);

}  // namespace ph
