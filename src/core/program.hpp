// Program: the immutable code component of a runtime instance.
//
// A Program owns the expression table and the supercombinator table. It is
// shared (read-only) by every capability of a shared-heap machine, and by
// every PE of a distributed-heap (Eden) machine — mirroring how every GHC
// process in the paper runs the same compiled binary. Graph packing relies
// on this: a packed thunk names its code by ExprId, which is meaningful on
// every PE.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/ir.hpp"

namespace ph {

/// Raised for malformed programs (unbound variables, bad arities, ...).
struct ProgramError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class Program {
 public:
  // --- construction (used by Builder) ----------------------------------
  ExprId add_expr(Expr e);
  GlobalId declare(std::string name, std::int32_t arity);
  void define(GlobalId id, ExprId body);

  // --- queries ----------------------------------------------------------
  const Expr& expr(ExprId id) const { return exprs_.at(static_cast<std::size_t>(id)); }
  const Global& global(GlobalId id) const { return globals_.at(static_cast<std::size_t>(id)); }
  std::size_t expr_count() const { return exprs_.size(); }
  std::size_t global_count() const { return globals_.size(); }

  /// Looks up a supercombinator by name; throws ProgramError if absent.
  GlobalId find(const std::string& name) const;
  bool has(const std::string& name) const { return by_name_.count(name) != 0; }

  /// Checks well-formedness of every defined supercombinator: all bodies
  /// present, variables bound, Case alternatives sane, Prim arities exact.
  /// Also computes Global::max_env. Must be called once after building and
  /// before execution; throws ProgramError on the first violation.
  void validate();
  bool validated() const { return validated_; }

  /// Human-readable rendering of one supercombinator (for diagnostics).
  std::string show_global(GlobalId id) const;
  std::string show_expr(ExprId id) const;

 private:
  std::int32_t check_expr(ExprId id, std::int32_t depth, const Global& g);

  std::vector<Expr> exprs_;
  std::vector<Global> globals_;
  std::unordered_map<std::string, GlobalId> by_name_;
  bool validated_ = false;
};

}  // namespace ph
