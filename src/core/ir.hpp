// Core intermediate representation: a lambda-lifted, non-strict
// supercombinator language in the spirit of GHC's Core/STG.
//
// Programs are immutable once built (see Program). All benchmark and
// prelude code is expressed in this IR and executed by the graph-reduction
// machine in src/eval. Parallelism enters through the Par/Seq expression
// forms, which correspond exactly to GpH's `par` and `seq` combinators.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ph {

/// Index of an expression node within a Program's expression table.
using ExprId = std::int32_t;
/// Index of a supercombinator (top-level function) within a Program.
using GlobalId = std::int32_t;

constexpr ExprId kNoExpr = -1;

/// Strict primitive operations. All operands are forced to WHNF (boxed
/// machine integers) before the operation is applied.
enum class PrimOp : std::uint8_t {
  Add,
  Sub,
  Mul,
  Div,   // truncated toward zero; Div/Mod by zero raises EvalError
  Mod,
  Neg,
  Min,
  Max,
  Eq,    // comparisons return Bool constructors (False = tag 0, True = 1)
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  // Deliberate escape hatches used by the runtime-facing prelude:
  Error  // aborts evaluation with an EvalError carrying the operand
};

const char* prim_op_name(PrimOp op);
/// Number of operands the operator consumes.
int prim_op_arity(PrimOp op);

enum class ExprTag : std::uint8_t {
  Var,     // local variable, de Bruijn *level* into the environment
  Global,  // reference to a supercombinator
  Lit,     // machine-integer literal
  App,     // application of an expression to >=1 argument expressions
  Let,     // (possibly recursive) lazy bindings, extends the environment
  Case,    // force scrutinee to WHNF, branch on constructor tag / literal
  Con,     // saturated constructor application (fields are lazy)
  Prim,    // strict primitive operation
  Par,     // GpH `par`: spark first operand, continue with second
  Seq      // GpH `seq`: force first operand to WHNF, continue with second
};

/// One alternative of a Case expression. For constructor cases `tag`
/// matches the scrutinee's constructor tag and `arity` field binders are
/// pushed onto the environment (as consecutive de Bruijn levels). For
/// literal cases `tag` holds the matched literal and `arity` is 0.
struct Alt {
  std::int64_t tag = 0;
  std::int32_t arity = 0;
  ExprId body = kNoExpr;
};

/// A single IR node. Nodes are stored in a flat table inside Program and
/// refer to each other by ExprId, which keeps the representation compact,
/// trivially serialisable (Eden graph packing refers to thunk code by
/// ExprId) and cheap to traverse.
struct Expr {
  ExprTag tag = ExprTag::Lit;

  // Var: `a` = de Bruijn level. Global: `a` = GlobalId. Con: `a` = ctor
  // tag. Prim: `a` = static_cast<PrimOp>. Case: `a` = 1 if the default
  // alternative binds the scrutinee.
  std::int32_t a = 0;

  std::int64_t lit = 0;  // Lit payload

  // App: kids[0] = function, kids[1..] = arguments.
  // Let: kids[0..n-1] = bound right-hand sides, kids[n] = body (see letn).
  // Case: kids[0] = scrutinee, kids[1] = default body or kNoExpr entry
  //       recorded via has_default.
  // Con/Prim: operand expressions.
  // Par/Seq: kids[0], kids[1].
  std::vector<ExprId> kids;

  std::vector<Alt> alts;  // Case only
  ExprId dflt = kNoExpr;  // Case default alternative body (kNoExpr if none)
};

/// A top-level supercombinator: `arity` parameters occupying de Bruijn
/// levels 0..arity-1 in its body. Supercombinators carry no free
/// variables; everything else must be passed explicitly (lambda-lifted
/// form), which is what makes thunk environments self-contained.
struct Global {
  std::string name;
  std::int32_t arity = 0;
  ExprId body = kNoExpr;
  /// Conservative count of environment slots live in the body (maximum de
  /// Bruijn level + 1). Filled in by Program::validate.
  std::int32_t max_env = 0;
};

}  // namespace ph
