// Builder: an embedded DSL for constructing core-IR programs from C++.
//
// The IR uses de Bruijn levels; the builder lets callers use names instead
// and performs the level bookkeeping. Supercombinators are built with a
// per-function Ctx that tracks the current scope:
//
//   Builder b(prog);
//   b.fun("double", {"x"}, [](Ctx& c) {
//     return c.prim(PrimOp::Add, c.var("x"), c.var("x"));
//   });
//
// Mutually recursive globals: declare first, then define.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/program.hpp"

namespace ph {

/// Opaque handle to a built expression (valid only within one Ctx).
struct E {
  ExprId id = kNoExpr;
};

class Builder;

/// Per-supercombinator build context. Not copyable; passed by reference to
/// the body-building callback.
class Ctx {
 public:
  // Atoms -----------------------------------------------------------------
  E var(const std::string& name);
  E lit(std::int64_t v);
  /// Reference to a supercombinator as a value (usable as function arg).
  E global(const std::string& name);

  // Compound forms ----------------------------------------------------------
  E app(E f, std::vector<E> args);
  /// Convenience: apply a named global.
  E app(const std::string& gname, std::vector<E> args);
  E con(std::int32_t tag, std::vector<E> fields = {});
  E prim(PrimOp op, E x);
  E prim(PrimOp op, E x, E y);
  E par(E spark, E body);
  E seq(E force, E body);

  /// Non-recursive single let; the right-hand side is built in the
  /// *current* scope, then `name` is in scope for the body.
  E let1(const std::string& name, E rhs, const std::function<E()>& body);
  /// Recursive lets: all names are in scope while building every RHS and
  /// the body (the callbacks run with the extended scope).
  E letrec(const std::vector<std::string>& names,
           const std::function<std::vector<E>()>& rhss,
           const std::function<E()>& body);

  struct AltSpec {
    std::int64_t tag = 0;
    std::vector<std::string> binders;  // constructor field names
    std::function<E()> body;
  };
  /// Case on constructor tags (or literals, with empty binder lists). The
  /// optional default may bind the scrutinee's WHNF under `dflt_binder`.
  E match(E scrut, std::vector<AltSpec> alts,
          const std::function<E()>& dflt = nullptr,
          const std::string& dflt_binder = "");

  /// Sugar: Bool case (False = Con 0, True = Con 1).
  E iff(E cond, const std::function<E()>& then_, const std::function<E()>& else_);

  /// Sugar: force `rhs` to WHNF and bind the result — a Case with only a
  /// binding default (Haskell's `case rhs of !name -> body`). The idiom
  /// behind all strict accumulators in the prelude.
  E strict(const std::string& name, E rhs, const std::function<E()>& body) {
    return match(rhs, {}, body, name);
  }

  // Common data sugar -------------------------------------------------------
  E nil() { return con(0); }
  E cons(E h, E t) { return con(1, {h, t}); }
  E pair(E a, E b2) { return con(0, {a, b2}); }
  E false_() { return con(0); }
  E true_() { return con(1); }

 private:
  friend class Builder;
  Ctx(Builder& b, std::vector<std::string> scope) : b_(b), scope_(std::move(scope)) {}
  std::int32_t lookup(const std::string& name) const;

  Builder& b_;
  std::vector<std::string> scope_;  // index = de Bruijn level
};

class Builder {
 public:
  explicit Builder(Program& p) : p_(p) {}

  GlobalId declare(const std::string& name, std::int32_t arity) {
    return p_.declare(name, arity);
  }
  /// Defines a previously declared supercombinator.
  void define(GlobalId id, const std::vector<std::string>& params,
              const std::function<E(Ctx&)>& mk_body);
  /// Declares and defines in one step; returns the new GlobalId.
  GlobalId fun(const std::string& name, const std::vector<std::string>& params,
               const std::function<E(Ctx&)>& mk_body);
  /// A 0-arity supercombinator (a CAF in GHC terms).
  GlobalId caf(const std::string& name, const std::function<E(Ctx&)>& mk_body) {
    return fun(name, {}, mk_body);
  }

  Program& program() { return p_; }

 private:
  friend class Ctx;
  Program& p_;
};

}  // namespace ph
