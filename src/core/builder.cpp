#include "core/builder.hpp"

#include <algorithm>

namespace ph {

std::int32_t Ctx::lookup(const std::string& name) const {
  for (auto it = scope_.rbegin(); it != scope_.rend(); ++it) {
    if (*it == name)
      return static_cast<std::int32_t>(scope_.size()) - 1 -
             static_cast<std::int32_t>(it - scope_.rbegin());
  }
  throw ProgramError("builder: unbound name '" + name + "'");
}

E Ctx::var(const std::string& name) {
  Expr e;
  e.tag = ExprTag::Var;
  e.a = lookup(name);
  return {b_.p_.add_expr(std::move(e))};
}

E Ctx::lit(std::int64_t v) {
  Expr e;
  e.tag = ExprTag::Lit;
  e.lit = v;
  return {b_.p_.add_expr(std::move(e))};
}

E Ctx::global(const std::string& name) {
  Expr e;
  e.tag = ExprTag::Global;
  e.a = b_.p_.find(name);
  return {b_.p_.add_expr(std::move(e))};
}

E Ctx::app(E f, std::vector<E> args) {
  if (args.empty()) return f;
  Expr e;
  e.tag = ExprTag::App;
  e.kids.push_back(f.id);
  for (E a : args) e.kids.push_back(a.id);
  return {b_.p_.add_expr(std::move(e))};
}

E Ctx::app(const std::string& gname, std::vector<E> args) {
  return app(global(gname), std::move(args));
}

E Ctx::con(std::int32_t tag, std::vector<E> fields) {
  Expr e;
  e.tag = ExprTag::Con;
  e.a = tag;
  for (E f : fields) e.kids.push_back(f.id);
  return {b_.p_.add_expr(std::move(e))};
}

E Ctx::prim(PrimOp op, E x) {
  Expr e;
  e.tag = ExprTag::Prim;
  e.a = static_cast<std::int32_t>(op);
  e.kids = {x.id};
  return {b_.p_.add_expr(std::move(e))};
}

E Ctx::prim(PrimOp op, E x, E y) {
  Expr e;
  e.tag = ExprTag::Prim;
  e.a = static_cast<std::int32_t>(op);
  e.kids = {x.id, y.id};
  return {b_.p_.add_expr(std::move(e))};
}

E Ctx::par(E spark, E body) {
  Expr e;
  e.tag = ExprTag::Par;
  e.kids = {spark.id, body.id};
  return {b_.p_.add_expr(std::move(e))};
}

E Ctx::seq(E force, E body) {
  Expr e;
  e.tag = ExprTag::Seq;
  e.kids = {force.id, body.id};
  return {b_.p_.add_expr(std::move(e))};
}

E Ctx::let1(const std::string& name, E rhs, const std::function<E()>& body) {
  scope_.push_back(name);
  E bodyE = body();
  scope_.pop_back();
  Expr e;
  e.tag = ExprTag::Let;
  e.kids = {rhs.id, bodyE.id};
  return {b_.p_.add_expr(std::move(e))};
}

E Ctx::letrec(const std::vector<std::string>& names,
              const std::function<std::vector<E>()>& rhss,
              const std::function<E()>& body) {
  for (const auto& n : names) scope_.push_back(n);
  std::vector<E> rs = rhss();
  if (rs.size() != names.size())
    throw ProgramError("builder: letrec RHS count does not match binder count");
  E bodyE = body();
  scope_.resize(scope_.size() - names.size());
  Expr e;
  e.tag = ExprTag::Let;
  for (E r : rs) e.kids.push_back(r.id);
  e.kids.push_back(bodyE.id);
  return {b_.p_.add_expr(std::move(e))};
}

E Ctx::match(E scrut, std::vector<AltSpec> alts, const std::function<E()>& dflt,
             const std::string& dflt_binder) {
  Expr e;
  e.tag = ExprTag::Case;
  e.kids = {scrut.id};
  for (auto& spec : alts) {
    Alt alt;
    alt.tag = spec.tag;
    alt.arity = static_cast<std::int32_t>(spec.binders.size());
    for (const auto& bnd : spec.binders) scope_.push_back(bnd);
    alt.body = spec.body().id;
    scope_.resize(scope_.size() - spec.binders.size());
    e.alts.push_back(alt);
  }
  if (dflt) {
    const bool binds = !dflt_binder.empty();
    e.a = binds ? 1 : 0;
    if (binds) scope_.push_back(dflt_binder);
    e.dflt = dflt().id;
    if (binds) scope_.pop_back();
  }
  return {b_.p_.add_expr(std::move(e))};
}

E Ctx::iff(E cond, const std::function<E()>& then_, const std::function<E()>& else_) {
  return match(cond,
               {AltSpec{/*tag=*/1, {}, then_}, AltSpec{/*tag=*/0, {}, else_}});
}

void Builder::define(GlobalId id, const std::vector<std::string>& params,
                     const std::function<E(Ctx&)>& mk_body) {
  const Global& g = p_.global(id);
  if (static_cast<std::size_t>(g.arity) != params.size())
    throw ProgramError("builder: parameter count mismatch for " + g.name);
  Ctx c(*this, params);
  E body = mk_body(c);
  p_.define(id, body.id);
}

GlobalId Builder::fun(const std::string& name, const std::vector<std::string>& params,
                      const std::function<E(Ctx&)>& mk_body) {
  GlobalId id = p_.declare(name, static_cast<std::int32_t>(params.size()));
  define(id, params, mk_body);
  return id;
}

}  // namespace ph
