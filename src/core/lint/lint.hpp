// Core Lint: a static well-formedness verifier over Program, in the
// spirit of GHC's -dcore-lint.
//
// Program::validate() throws a ProgramError on the *first* violation it
// meets; that is the right contract for the builder pipeline but useless
// as a diagnostic tool. Lint instead walks the whole program — including
// unvalidated programs, and programs with reference cycles or dangling
// ids the validator would die on — and accumulates structured LintDefect
// records: rule id, supercombinator, offending ExprId and the path from
// the body to it. The rules are numbered L1..L10 and documented in
// DESIGN.md §12.
//
// Exhaustiveness (L8) is checked two ways, because the IR is untyped:
//  * a local *shape* approximation of the scrutinee (constructor
//    applications, comparison primitives producing Bool, branch joins)
//    catches cases whose scrutinee provably produces a tag no
//    alternative covers; and
//  * for unknown scrutinees a *datatype registry* of constructor
//    signatures (tag/arity pairs) requires a defaultless case to cover
//    some declared datatype exactly — coverage that happens to work for
//    today's callers but matches no datatype is flagged as accidental.
// The same registry backs L6: every Con must be a saturated application
// of a declared constructor.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/program.hpp"

namespace ph {

enum class LintRule : std::uint8_t {
  L1DanglingExpr,       // ExprId out of range, kNoExpr body, or a reference cycle
  L2UnboundVar,         // Var level outside the current scope depth
  L3DanglingGlobal,     // GlobalId out of range
  L4AppNoArgs,          // App with fewer than two kids (function + >=1 arg)
  L5PrimArity,          // Prim operand count != prim_op_arity
  L6ConShape,           // negative/overflowing tag, or unsaturated vs the registry
  L7CaseMalformed,      // scrutinee count, empty case, duplicate tags, negative arity
  L8CaseNonExhaustive,  // scrutinee can produce an uncovered constructor / no default
  L9LetNoBody,          // Let with no body expression
  L10UnreachableGlobal  // not reachable from the declared roots (warning)
};

/// Short stable identifier ("L1".."L10") used in diagnostics and pinned
/// by the regression corpus in tests/test_lint.cpp.
const char* lint_rule_id(LintRule r);
/// Human-readable rule title.
const char* lint_rule_title(LintRule r);

/// One constructor signature: the tag stored in Expr::a / Obj::tag and
/// the number of fields a saturated application carries.
struct ConSig {
  std::int64_t tag = 0;
  std::int32_t arity = 0;
  friend bool operator==(const ConSig&, const ConSig&) = default;
};

/// A datatype as far as the untyped IR can know one: a named set of
/// constructor signatures. A defaultless Case is exhaustive when its
/// alternatives cover some datatype's constructors exactly.
struct DatatypeSig {
  std::string name;
  std::vector<ConSig> cons;
};

/// The data conventions every shipped program uses (DESIGN.md §2):
/// Unit {Con0/0}, Bool {Con0/0, Con1/0}, List {Con0/0, Con1/2},
/// Pair {Con0/2}, Triple {Con0/3}.
std::vector<DatatypeSig> default_datatypes();

struct LintOptions {
  std::vector<DatatypeSig> datatypes = default_datatypes();
  /// When non-empty, globals unreachable from these roots (via the call
  /// graph) are reported under L10 as warnings.
  std::vector<GlobalId> roots;
};

struct LintDefect {
  LintRule rule = LintRule::L1DanglingExpr;
  GlobalId global = -1;   // -1 for program-level defects
  ExprId expr = kNoExpr;  // offending node (kNoExpr for global-level)
  std::string path;       // e.g. "body.kids[1].alts[0].body"
  std::string message;
  bool warning = false;   // warnings do not fail LintReport::clean()
};

struct LintReport {
  std::vector<LintDefect> defects;

  /// True when no non-warning defect was found.
  bool clean() const;
  std::size_t error_count() const;
  std::size_t warning_count() const;

  /// GCC-style listing, one line per defect:
  ///   unit:global:path: error[L2]: unbound variable level 7 (scope depth 3)
  std::string render(const Program& p, const std::string& unit = "program") const;
};

/// Lints every supercombinator. Works on unvalidated programs (that is
/// the point: the validator throws on the defects lint must describe)
/// and never throws on malformed input.
LintReport lint_program(const Program& p, const LintOptions& opts = {});

/// Raised by lint_or_throw (the -DL load-time hook): carries the full
/// report; what() is the rendered GCC-style listing.
struct LintError : ProgramError {
  LintError(LintReport r, const std::string& rendered)
      : ProgramError(rendered), report(std::move(r)) {}
  LintReport report;
};

/// Lints and throws LintError when the report is not clean.
void lint_or_throw(const Program& p, const LintOptions& opts = {},
                   const std::string& unit = "program");

}  // namespace ph
