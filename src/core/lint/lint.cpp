#include "core/lint/lint.hpp"

#include <algorithm>
#include <sstream>

namespace ph {

const char* lint_rule_id(LintRule r) {
  switch (r) {
    case LintRule::L1DanglingExpr: return "L1";
    case LintRule::L2UnboundVar: return "L2";
    case LintRule::L3DanglingGlobal: return "L3";
    case LintRule::L4AppNoArgs: return "L4";
    case LintRule::L5PrimArity: return "L5";
    case LintRule::L6ConShape: return "L6";
    case LintRule::L7CaseMalformed: return "L7";
    case LintRule::L8CaseNonExhaustive: return "L8";
    case LintRule::L9LetNoBody: return "L9";
    case LintRule::L10UnreachableGlobal: return "L10";
  }
  return "L?";
}

const char* lint_rule_title(LintRule r) {
  switch (r) {
    case LintRule::L1DanglingExpr: return "dangling expression reference";
    case LintRule::L2UnboundVar: return "unbound variable";
    case LintRule::L3DanglingGlobal: return "dangling global reference";
    case LintRule::L4AppNoArgs: return "application without arguments";
    case LintRule::L5PrimArity: return "primitive arity mismatch";
    case LintRule::L6ConShape: return "bad constructor application";
    case LintRule::L7CaseMalformed: return "malformed case";
    case LintRule::L8CaseNonExhaustive: return "non-exhaustive case";
    case LintRule::L9LetNoBody: return "let without body";
    case LintRule::L10UnreachableGlobal: return "unreachable supercombinator";
  }
  return "unknown";
}

std::vector<DatatypeSig> default_datatypes() {
  return {
      {"Unit", {{0, 0}}},
      {"Bool", {{0, 0}, {1, 0}}},
      {"List", {{0, 0}, {1, 2}}},
      {"Pair", {{0, 2}}},
      {"Triple", {{0, 3}}},
  };
}

bool LintReport::clean() const {
  return std::none_of(defects.begin(), defects.end(),
                      [](const LintDefect& d) { return !d.warning; });
}

std::size_t LintReport::error_count() const {
  return static_cast<std::size_t>(std::count_if(
      defects.begin(), defects.end(), [](const LintDefect& d) { return !d.warning; }));
}

std::size_t LintReport::warning_count() const {
  return defects.size() - error_count();
}

std::string LintReport::render(const Program& p, const std::string& unit) const {
  std::ostringstream out;
  for (const LintDefect& d : defects) {
    out << unit;
    if (d.global >= 0 && static_cast<std::size_t>(d.global) < p.global_count())
      out << ":" << p.global(d.global).name;
    if (!d.path.empty()) out << ":" << d.path;
    out << ": " << (d.warning ? "warning" : "error") << "[" << lint_rule_id(d.rule)
        << "]: " << d.message << "\n";
  }
  out << unit << ": " << error_count() << " error(s), " << warning_count()
      << " warning(s)\n";
  return out.str();
}

namespace {

/// The runtime stores constructor tags in a 16-bit Obj::tag; a Con whose
/// 32-bit IR tag exceeds this silently truncates at allocation.
constexpr std::int32_t kMaxConTag = 0xFFFF;

/// Local shape approximation of what an expression can evaluate to.
struct Shape {
  enum Kind : std::uint8_t { Bottom, IntVal, Cons, Top } kind = Top;
  std::vector<ConSig> cons;  // Kind::Cons only

  static Shape bottom() { return {Bottom, {}}; }
  static Shape top() { return {Top, {}}; }
  static Shape intval() { return {IntVal, {}}; }
  static Shape one(ConSig s) { return {Cons, {s}}; }
};

Shape join(Shape a, const Shape& b) {
  if (a.kind == Shape::Bottom) return b;
  if (b.kind == Shape::Bottom) return a;
  if (a.kind == Shape::Top || b.kind == Shape::Top) return Shape::top();
  if (a.kind != b.kind) return Shape::top();
  if (a.kind == Shape::IntVal) return a;
  for (const ConSig& s : b.cons)
    if (std::find(a.cons.begin(), a.cons.end(), s) == a.cons.end()) a.cons.push_back(s);
  return a;
}

bool prim_returns_bool(PrimOp op) {
  switch (op) {
    case PrimOp::Eq:
    case PrimOp::Ne:
    case PrimOp::Lt:
    case PrimOp::Le:
    case PrimOp::Gt:
    case PrimOp::Ge:
      return true;
    default:
      return false;
  }
}

class Linter {
 public:
  Linter(const Program& p, const LintOptions& opts) : p_(p), opts_(opts) {
    on_path_.assign(p_.expr_count(), 0);
  }

  LintReport run() {
    for (std::size_t g = 0; g < p_.global_count(); ++g) {
      gid_ = static_cast<GlobalId>(g);
      const Global& gl = p_.global(gid_);
      path_.clear();
      path_.push_back("body");
      if (gl.body == kNoExpr) {
        defect(LintRule::L1DanglingExpr, kNoExpr,
               "supercombinator '" + gl.name + "' has no body");
        continue;
      }
      walk(gl.body, gl.arity);
    }
    if (!opts_.roots.empty()) check_reachability();
    return std::move(report_);
  }

 private:
  bool valid(ExprId id) const {
    return id >= 0 && static_cast<std::size_t>(id) < p_.expr_count();
  }

  std::string joined_path() const {
    std::string s;
    for (std::size_t i = 0; i < path_.size(); ++i) {
      if (i != 0) s += ".";
      s += path_[i];
    }
    return s;
  }

  void defect(LintRule rule, ExprId id, std::string msg, bool warning = false) {
    report_.defects.push_back(
        {rule, gid_, id, joined_path(), std::move(msg), warning});
  }

  /// Walks one kid under a path segment.
  void kid(ExprId id, std::int32_t depth, std::string seg) {
    path_.push_back(std::move(seg));
    walk(id, depth);
    path_.pop_back();
  }

  void walk(ExprId id, std::int32_t depth) {
    if (!valid(id)) {
      defect(LintRule::L1DanglingExpr, id,
             "dangling ExprId " + std::to_string(id) + " (table has " +
                 std::to_string(p_.expr_count()) + " nodes)");
      return;
    }
    if (on_path_[static_cast<std::size_t>(id)]) {
      defect(LintRule::L1DanglingExpr, id,
             "cyclic expression reference through ExprId " + std::to_string(id));
      return;
    }
    on_path_[static_cast<std::size_t>(id)] = 1;
    const Expr& e = p_.expr(id);
    switch (e.tag) {
      case ExprTag::Var:
        if (e.a < 0 || e.a >= depth)
          defect(LintRule::L2UnboundVar, id,
                 "unbound variable level " + std::to_string(e.a) + " (scope depth " +
                     std::to_string(depth) + ")");
        break;
      case ExprTag::Global:
        if (e.a < 0 || static_cast<std::size_t>(e.a) >= p_.global_count())
          defect(LintRule::L3DanglingGlobal, id,
                 "dangling GlobalId " + std::to_string(e.a) + " (program has " +
                     std::to_string(p_.global_count()) + " supercombinators)");
        break;
      case ExprTag::Lit:
        break;
      case ExprTag::App:
        if (e.kids.size() < 2)
          defect(LintRule::L4AppNoArgs, id,
                 "App with " + std::to_string(e.kids.size()) +
                     " kid(s); needs a function and at least one argument");
        for (std::size_t i = 0; i < e.kids.size(); ++i)
          kid(e.kids[i], depth, "kids[" + std::to_string(i) + "]");
        break;
      case ExprTag::Let: {
        if (e.kids.size() < 2) {
          defect(LintRule::L9LetNoBody, id,
                 "Let with " + std::to_string(e.kids.size()) +
                     " kid(s); needs at least one binding and a body");
          for (std::size_t i = 0; i < e.kids.size(); ++i)
            kid(e.kids[i], depth, "kids[" + std::to_string(i) + "]");
          break;
        }
        const auto n = static_cast<std::int32_t>(e.kids.size()) - 1;
        for (std::int32_t i = 0; i < n; ++i)
          kid(e.kids[static_cast<std::size_t>(i)], depth + n,
              "rhs[" + std::to_string(i) + "]");
        kid(e.kids[static_cast<std::size_t>(n)], depth + n, "letbody");
        break;
      }
      case ExprTag::Case:
        check_case(e, id, depth);
        break;
      case ExprTag::Con: {
        if (e.a < 0) {
          defect(LintRule::L6ConShape, id,
                 "negative constructor tag " + std::to_string(e.a));
        } else if (e.a > kMaxConTag) {
          defect(LintRule::L6ConShape, id,
                 "constructor tag " + std::to_string(e.a) +
                     " exceeds the runtime's 16-bit tag field (max 65535)");
        } else if (!known_con({e.a, static_cast<std::int32_t>(e.kids.size())})) {
          defect(LintRule::L6ConShape, id,
                 "Con " + std::to_string(e.a) + " applied to " +
                     std::to_string(e.kids.size()) +
                     " field(s) matches no declared constructor "
                     "(unsaturated or unknown)");
        }
        for (std::size_t i = 0; i < e.kids.size(); ++i)
          kid(e.kids[i], depth, "kids[" + std::to_string(i) + "]");
        break;
      }
      case ExprTag::Prim: {
        const auto op = static_cast<PrimOp>(e.a);
        const auto want = static_cast<std::size_t>(prim_op_arity(op));
        if (e.kids.size() != want)
          defect(LintRule::L5PrimArity, id,
                 std::string(prim_op_name(op)) + " applied to " +
                     std::to_string(e.kids.size()) + " operand(s), expects " +
                     std::to_string(want));
        for (std::size_t i = 0; i < e.kids.size(); ++i)
          kid(e.kids[i], depth, "kids[" + std::to_string(i) + "]");
        break;
      }
      case ExprTag::Par:
      case ExprTag::Seq: {
        const char* what = e.tag == ExprTag::Par ? "Par" : "Seq";
        if (e.kids.size() != 2)
          defect(LintRule::L1DanglingExpr, id,
                 std::string(what) + " with " + std::to_string(e.kids.size()) +
                     " kid(s); needs exactly two");
        for (std::size_t i = 0; i < e.kids.size(); ++i)
          kid(e.kids[i], depth, "kids[" + std::to_string(i) + "]");
        break;
      }
    }
    on_path_[static_cast<std::size_t>(id)] = 0;
  }

  bool known_con(ConSig s) const {
    for (const DatatypeSig& d : opts_.datatypes)
      for (const ConSig& c : d.cons)
        if (c == s) return true;
    return false;
  }

  void check_case(const Expr& e, ExprId id, std::int32_t depth) {
    if (e.kids.size() != 1) {
      defect(LintRule::L7CaseMalformed, id,
             "Case with " + std::to_string(e.kids.size()) +
                 " kid(s); needs exactly one scrutinee");
      for (std::size_t i = 0; i < e.kids.size(); ++i)
        kid(e.kids[i], depth, "kids[" + std::to_string(i) + "]");
      return;
    }
    kid(e.kids[0], depth, "scrut");
    if (e.alts.empty() && e.dflt == kNoExpr)
      defect(LintRule::L7CaseMalformed, id, "Case with no alternatives and no default");
    for (std::size_t i = 0; i < e.alts.size(); ++i) {
      const Alt& alt = e.alts[i];
      if (alt.arity < 0)
        defect(LintRule::L7CaseMalformed, id,
               "alternative " + std::to_string(i) + " has negative arity " +
                   std::to_string(alt.arity));
      for (std::size_t j = 0; j < i; ++j)
        if (e.alts[j].tag == alt.tag) {
          defect(LintRule::L7CaseMalformed, id,
                 "duplicate alternative tag " + std::to_string(alt.tag));
          break;
        }
      kid(alt.body, depth + std::max<std::int32_t>(alt.arity, 0),
          "alts[" + std::to_string(i) + "].body");
    }
    if (e.dflt != kNoExpr)
      kid(e.dflt, depth + (e.a != 0 ? 1 : 0), "default");
    check_exhaustiveness(e, id);
  }

  void check_exhaustiveness(const Expr& e, ExprId id) {
    const Shape s = shape_of(e.kids[0], 0);
    auto alt_for = [&](std::int64_t tag) -> const Alt* {
      for (const Alt& a : e.alts)
        if (a.tag == tag) return &a;
      return nullptr;
    };
    if (s.kind == Shape::Cons) {
      for (const ConSig& sig : s.cons) {
        const Alt* a = alt_for(sig.tag);
        if (a == nullptr) {
          if (e.dflt == kNoExpr)
            defect(LintRule::L8CaseNonExhaustive, id,
                   "scrutinee can produce Con" + std::to_string(sig.tag) + "/" +
                       std::to_string(sig.arity) +
                       ", which no alternative covers and there is no default");
        } else if (a->arity != sig.arity) {
          defect(LintRule::L8CaseNonExhaustive, id,
                 "alternative for tag " + std::to_string(sig.tag) + " binds " +
                     std::to_string(a->arity) + " field(s) but the scrutinee's Con" +
                     std::to_string(sig.tag) + " carries " +
                     std::to_string(sig.arity));
        }
      }
      return;
    }
    if (s.kind == Shape::IntVal) {
      if (e.dflt == kNoExpr)
        defect(LintRule::L8CaseNonExhaustive, id,
               "case on an integer scrutinee cannot enumerate all literals; "
               "add a default alternative");
      return;
    }
    if (s.kind != Shape::Top || e.dflt != kNoExpr || e.alts.empty()) return;
    // Unknown scrutinee, no default: the alternatives must cover some
    // declared datatype exactly, otherwise coverage is accidental.
    std::vector<ConSig> have;
    for (const Alt& a : e.alts) have.push_back({a.tag, a.arity});
    auto covers = [&](const DatatypeSig& d, bool exact) {
      for (const ConSig& c : have)
        if (std::find(d.cons.begin(), d.cons.end(), c) == d.cons.end()) return false;
      return !exact || have.size() == d.cons.size();
    };
    for (const DatatypeSig& d : opts_.datatypes)
      if (covers(d, /*exact=*/true)) return;
    for (const DatatypeSig& d : opts_.datatypes)
      if (covers(d, /*exact=*/false)) {
        defect(LintRule::L8CaseNonExhaustive, id,
               "covers only " + std::to_string(have.size()) + " of " +
                   std::to_string(d.cons.size()) + " constructors of " + d.name +
                   " and has no default");
        return;
      }
    defect(LintRule::L8CaseNonExhaustive, id,
           "defaultless alternatives match no declared datatype; add a default "
           "or register the constructor set");
  }

  /// Local shape of what `id` can evaluate to. `fuel` bounds recursion so
  /// malformed (cyclic) tables cannot hang the linter.
  Shape shape_of(ExprId id, int fuel) const {
    if (!valid(id) || fuel > 64) return Shape::top();
    const Expr& e = p_.expr(id);
    switch (e.tag) {
      case ExprTag::Lit:
        return Shape::intval();
      case ExprTag::Con:
        if (e.a < 0) return Shape::top();
        return Shape::one({e.a, static_cast<std::int32_t>(e.kids.size())});
      case ExprTag::Prim: {
        const auto op = static_cast<PrimOp>(e.a);
        if (op == PrimOp::Error) return Shape::bottom();
        if (prim_returns_bool(op)) return {Shape::Cons, {{0, 0}, {1, 0}}};
        return Shape::intval();
      }
      case ExprTag::Seq:
      case ExprTag::Par:
        return e.kids.size() == 2 ? shape_of(e.kids[1], fuel + 1) : Shape::top();
      case ExprTag::Let:
        return e.kids.size() >= 2 ? shape_of(e.kids.back(), fuel + 1) : Shape::top();
      case ExprTag::Case: {
        Shape s = Shape::bottom();
        for (const Alt& a : e.alts) s = join(s, shape_of(a.body, fuel + 1));
        if (e.dflt != kNoExpr) s = join(s, shape_of(e.dflt, fuel + 1));
        return s.kind == Shape::Bottom ? Shape::top() : s;
      }
      case ExprTag::Var:
      case ExprTag::Global:
      case ExprTag::App:
        return Shape::top();
    }
    return Shape::top();
  }

  // --- L10: reachability from the declared roots --------------------------
  void collect_globals(ExprId id, std::vector<char>& seen_expr,
                       std::vector<GlobalId>& out) const {
    if (!valid(id) || seen_expr[static_cast<std::size_t>(id)]) return;
    seen_expr[static_cast<std::size_t>(id)] = 1;
    const Expr& e = p_.expr(id);
    if (e.tag == ExprTag::Global && e.a >= 0 &&
        static_cast<std::size_t>(e.a) < p_.global_count())
      out.push_back(e.a);
    for (ExprId k : e.kids) collect_globals(k, seen_expr, out);
    for (const Alt& a : e.alts) collect_globals(a.body, seen_expr, out);
    if (e.dflt != kNoExpr) collect_globals(e.dflt, seen_expr, out);
  }

  void check_reachability() {
    std::vector<char> reached(p_.global_count(), 0);
    std::vector<GlobalId> work;
    for (GlobalId r : opts_.roots)
      if (r >= 0 && static_cast<std::size_t>(r) < p_.global_count() && !reached[r]) {
        reached[static_cast<std::size_t>(r)] = 1;
        work.push_back(r);
      }
    while (!work.empty()) {
      GlobalId g = work.back();
      work.pop_back();
      const Global& gl = p_.global(g);
      if (gl.body == kNoExpr) continue;
      std::vector<char> seen_expr(p_.expr_count(), 0);
      std::vector<GlobalId> refs;
      collect_globals(gl.body, seen_expr, refs);
      for (GlobalId r : refs)
        if (!reached[static_cast<std::size_t>(r)]) {
          reached[static_cast<std::size_t>(r)] = 1;
          work.push_back(r);
        }
    }
    for (std::size_t g = 0; g < p_.global_count(); ++g)
      if (!reached[g]) {
        gid_ = static_cast<GlobalId>(g);
        path_.clear();
        report_.defects.push_back(
            {LintRule::L10UnreachableGlobal, gid_, kNoExpr, "",
             "'" + p_.global(gid_).name + "' is unreachable from the declared roots",
             /*warning=*/true});
      }
  }

  const Program& p_;
  const LintOptions& opts_;
  LintReport report_;
  GlobalId gid_ = -1;
  std::vector<std::string> path_;
  std::vector<char> on_path_;
};

}  // namespace

LintReport lint_program(const Program& p, const LintOptions& opts) {
  return Linter(p, opts).run();
}

void lint_or_throw(const Program& p, const LintOptions& opts, const std::string& unit) {
  LintReport r = lint_program(p, opts);
  if (!r.clean()) {
    std::string rendered = r.render(p, unit);
    throw LintError(std::move(r), rendered);
  }
}

}  // namespace ph
